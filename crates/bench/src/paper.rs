//! Published numbers from the paper, for side-by-side reporting.
//!
//! Only the headline per-row results of Table 3 and the per-benchmark
//! averages of Figs. 16–17 are recorded; EXPERIMENTS.md documents how our
//! measurements compare and why absolute values can differ (decomposition
//! constants, §“Known deviations”).

/// One published row of paper Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperTable3Row {
    /// Row label, e.g. `QFT-100-10`.
    pub label: &'static str,
    /// “Tot Comm”.
    pub tot_comm: usize,
    /// “TP-Comm”.
    pub tp_comm: usize,
    /// “Peak # REM CX”.
    pub peak_rem_cx: f64,
    /// “Improv. factor”.
    pub improv: f64,
    /// “LAT-DEC factor”.
    pub lat_dec: f64,
}

/// Paper Table 3, verbatim.
pub const TABLE3: &[PaperTable3Row] = &[
    PaperTable3Row {
        label: "MCTR-100-10",
        tot_comm: 533,
        tp_comm: 220,
        peak_rem_cx: 10.0,
        improv: 3.15,
        lat_dec: 3.27,
    },
    PaperTable3Row {
        label: "MCTR-200-20",
        tot_comm: 972,
        tp_comm: 418,
        peak_rem_cx: 10.0,
        improv: 3.67,
        lat_dec: 3.83,
    },
    PaperTable3Row {
        label: "MCTR-300-30",
        tot_comm: 2044,
        tp_comm: 1112,
        peak_rem_cx: 10.0,
        improv: 2.76,
        lat_dec: 2.88,
    },
    PaperTable3Row {
        label: "RCA-100-10",
        tot_comm: 79,
        tp_comm: 54,
        peak_rem_cx: 5.5,
        improv: 2.78,
        lat_dec: 3.34,
    },
    PaperTable3Row {
        label: "RCA-200-20",
        tot_comm: 469,
        tp_comm: 224,
        peak_rem_cx: 5.5,
        improv: 1.41,
        lat_dec: 2.10,
    },
    PaperTable3Row {
        label: "RCA-300-30",
        tot_comm: 410,
        tp_comm: 204,
        peak_rem_cx: 5.5,
        improv: 2.00,
        lat_dec: 3.30,
    },
    PaperTable3Row {
        label: "QFT-100-10",
        tot_comm: 2068,
        tp_comm: 1784,
        peak_rem_cx: 18.0,
        improv: 8.70,
        lat_dec: 6.53,
    },
    PaperTable3Row {
        label: "QFT-200-20",
        tot_comm: 8351,
        tp_comm: 7566,
        peak_rem_cx: 18.0,
        improv: 9.10,
        lat_dec: 6.98,
    },
    PaperTable3Row {
        label: "QFT-300-30",
        tot_comm: 18835,
        tp_comm: 17348,
        peak_rem_cx: 18.0,
        improv: 9.24,
        lat_dec: 7.13,
    },
    PaperTable3Row {
        label: "BV-100-10",
        tot_comm: 9,
        tp_comm: 0,
        peak_rem_cx: 8.0,
        improv: 6.22,
        lat_dec: 4.33,
    },
    PaperTable3Row {
        label: "BV-200-20",
        tot_comm: 19,
        tp_comm: 0,
        peak_rem_cx: 8.0,
        improv: 6.63,
        lat_dec: 4.63,
    },
    PaperTable3Row {
        label: "BV-300-30",
        tot_comm: 29,
        tp_comm: 0,
        peak_rem_cx: 8.0,
        improv: 6.69,
        lat_dec: 4.69,
    },
    PaperTable3Row {
        label: "QAOA-100-10",
        tot_comm: 1448,
        tp_comm: 266,
        peak_rem_cx: 6.0,
        improv: 2.17,
        lat_dec: 1.83,
    },
    PaperTable3Row {
        label: "QAOA-200-20",
        tot_comm: 6787,
        tp_comm: 728,
        peak_rem_cx: 8.0,
        improv: 2.07,
        lat_dec: 1.79,
    },
    PaperTable3Row {
        label: "QAOA-300-30",
        tot_comm: 16053,
        tp_comm: 1138,
        peak_rem_cx: 6.0,
        improv: 2.05,
        lat_dec: 1.69,
    },
    PaperTable3Row {
        label: "UCCSD-8-4",
        tot_comm: 464,
        tp_comm: 0,
        peak_rem_cx: 4.0,
        improv: 1.94,
        lat_dec: 1.74,
    },
    PaperTable3Row {
        label: "UCCSD-12-6",
        tot_comm: 8973,
        tp_comm: 0,
        peak_rem_cx: 4.0,
        improv: 1.69,
        lat_dec: 1.55,
    },
    PaperTable3Row {
        label: "UCCSD-16-8",
        tot_comm: 33303,
        tp_comm: 0,
        peak_rem_cx: 5.0,
        improv: 1.60,
        lat_dec: 1.50,
    },
];

/// Looks up a published Table-3 row by its label.
pub fn table3_row(label: &str) -> Option<&'static PaperTable3Row> {
    TABLE3.iter().find(|r| r.label == label)
}

/// Paper Fig. 16 per-benchmark averages `(improv factor, LAT-DEC factor)`
/// against GP-TP, in the figure's order.
pub const FIG16: &[(&str, f64, f64)] = &[
    ("RCA", 1.3, 2.7),
    ("QAOA", 1.6, 2.4),
    ("MCTR", 2.8, 3.9),
    ("UCCSD", 3.3, 3.5),
    ("QFT", 5.3, 6.6),
    ("BV", 12.9, 10.3),
];

/// Paper Fig. 17(a) — no-commute / commute communication ratios for
/// (QFT, BV) at the three sizes.
pub const FIG17A: &[(&str, [f64; 3])] = &[("QFT", [4.35, 4.55, 4.62]), ("BV", [6.22, 6.63, 6.69])];

/// Paper Fig. 17(b) — Cat-only / hybrid communication ratios for
/// (RCA, QFT) at the three sizes.
pub const FIG17B: &[(&str, [f64; 3])] = &[("RCA", [1.35, 1.02, 1.17]), ("QFT", [4.2, 4.46, 4.56])];

/// Paper Fig. 17(c) — greedy / burst-greedy latency ratios for
/// (MCTR, QFT) at the three sizes.
pub const FIG17C: &[(&str, [f64; 3])] =
    &[("MCTR", [1.24, 1.17, 1.19]), ("QFT", [1.44, 1.56, 1.61])];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_complete_and_ordered() {
        assert_eq!(TABLE3.len(), 18);
        assert_eq!(TABLE3[0].label, "MCTR-100-10");
        assert!(table3_row("QFT-300-30").is_some());
        assert!(table3_row("NOPE").is_none());
    }

    #[test]
    fn paper_averages_match_abstract() {
        // The abstract quotes 4.1x average comm reduction and 3.5x latency.
        let improv: f64 = TABLE3.iter().map(|r| r.improv).sum::<f64>() / TABLE3.len() as f64;
        let lat: f64 = TABLE3.iter().map(|r| r.lat_dec).sum::<f64>() / TABLE3.len() as f64;
        assert!((improv - 4.1).abs() < 0.15, "improv avg {improv}");
        assert!((lat - 3.5).abs() < 0.15, "lat avg {lat}");
    }
}
