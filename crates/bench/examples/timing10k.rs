//! Wall-clock timing of a ~10k-gate random-circuit compile, per pass and
//! end to end (one warm-up pass, then the mean of ten runs; the criterion
//! bench `ir_scale` tracks the same configurations statistically and the
//! recorded pre-/post-refactor numbers live in
//! `crates/bench/baselines/ir_10k_baseline.json`).

use std::time::Instant;

fn main() {
    let (raw, p) = dqc_workloads::random_distributed_circuit(8, 2, 10_000, 7);
    let c = dqc_circuit::unroll_circuit(&autocomm::orient_symmetric_gates(&raw, &p)).unwrap();
    eprintln!("gates: {} (after unrolling)", c.len());

    let ir = autocomm::CommIr::build_shared(&c, &p);
    let agg = autocomm::aggregate_ir(ir.clone(), autocomm::AggregateOptions::default());
    let asg = autocomm::assign(&agg);
    let hw = dqc_hardware::HardwareSpec::for_partition(&p);
    eprintln!(
        "comm-ir: {} unique gates, {} dag edges; aggregate: {} blocks",
        ir.unique_gates(),
        ir.dag().edge_count(),
        agg.block_count()
    );

    const RUNS: u32 = 10;
    fn timed(name: &str, mut f: impl FnMut()) {
        f(); // warm-up
        let t = Instant::now();
        for _ in 0..RUNS {
            f();
        }
        eprintln!("{name}: {:?}/run", t.elapsed() / RUNS);
    }
    timed("comm-ir", || {
        std::hint::black_box(autocomm::CommIr::build_shared(&c, &p));
    });
    timed("aggregate", || {
        std::hint::black_box(autocomm::aggregate_ir(
            ir.clone(),
            autocomm::AggregateOptions::default(),
        ));
    });
    timed("assign", || {
        std::hint::black_box(autocomm::assign(&agg));
    });
    timed("schedule", || {
        std::hint::black_box(autocomm::schedule(
            &asg,
            &autocomm::Placement::identity(&p),
            &hw,
            autocomm::ScheduleOptions::default(),
        ));
    });
    timed("end-to-end compile", || {
        std::hint::black_box(autocomm::AutoComm::new().compile(&raw, &p).unwrap());
    });
}
