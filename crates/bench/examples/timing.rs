use dqc_bench::run_config;
use dqc_workloads::{BenchConfig, Workload};
use std::time::Instant;

fn main() {
    for (w, q, n) in [
        (Workload::Qft, 100, 10),
        (Workload::Qaoa, 100, 10),
        (Workload::Uccsd, 16, 8),
        (Workload::Qft, 300, 30),
    ] {
        let t = Instant::now();
        let row = run_config(&BenchConfig::new(w, q, n));
        println!(
            "{}: {:?} improv {:.2} lat {:.2} totcomm {} tp {}",
            row.config.label(),
            t.elapsed(),
            row.improv_factor(),
            row.lat_dec_factor(),
            row.metrics.total_comms,
            row.metrics.tp_comms,
        );
    }
}
