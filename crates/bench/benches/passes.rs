//! Criterion benchmarks of the compiler passes and end-to-end pipelines on
//! representative workloads (one per paper table/figure family; the
//! table/figure *values* are produced by the `src/bin` harnesses, these
//! benches track compile-time performance of the implementation itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autocomm::{aggregate, assign, schedule, AggregateOptions, AutoComm, ScheduleOptions};
use dqc_baselines::{compile_ferrari, compile_gp_tp};
use dqc_bench::oee_mapping;
use dqc_circuit::unroll_circuit;
use dqc_hardware::HardwareSpec;
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::{generate, BenchConfig, Workload};

fn bench_passes(c: &mut Criterion) {
    let config = BenchConfig::new(Workload::Qft, 40, 4);
    let circuit = generate(&config);
    let unrolled = unroll_circuit(&circuit).unwrap();
    let partition = oee_mapping(&circuit, config.num_nodes);
    let hw = HardwareSpec::for_partition(&partition);

    c.bench_function("aggregate/qft-40-4", |b| {
        b.iter(|| {
            black_box(aggregate(black_box(&unrolled), &partition, AggregateOptions::default()))
        })
    });

    let aggregated = aggregate(&unrolled, &partition, AggregateOptions::default());
    c.bench_function("assign/qft-40-4", |b| b.iter(|| black_box(assign(black_box(&aggregated)))));

    let assigned = assign(&aggregated);
    let placement = autocomm::Placement::identity(&partition);
    c.bench_function("schedule/qft-40-4", |b| {
        b.iter(|| {
            black_box(schedule(black_box(&assigned), &placement, &hw, ScheduleOptions::default()))
        })
    });

    // The buffered engine runs the prescan plus both schedules (the
    // strict-improvement rail), so this tracks its constant-factor cost
    // over the legacy path.
    let buffered =
        ScheduleOptions::default().with_buffer(autocomm::BufferPolicy::Prefetch { depth: 4 });
    c.bench_function("schedule-buffered/qft-40-4", |b| {
        b.iter(|| black_box(schedule(black_box(&assigned), &placement, &hw, buffered)))
    });
}

fn bench_partitioner(c: &mut Criterion) {
    let circuit = generate(&BenchConfig::new(Workload::Qaoa, 60, 6));
    let unrolled = unroll_circuit(&circuit).unwrap();
    let graph = InteractionGraph::from_circuit(&unrolled);
    c.bench_function("oee/qaoa-60-6", |b| {
        b.iter(|| black_box(oee_partition(black_box(&graph), 6).unwrap()))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end-to-end");
    for workload in [Workload::Qft, Workload::Bv, Workload::Qaoa, Workload::Rca] {
        let config = BenchConfig::new(workload, 20, 2);
        let circuit = generate(&config);
        let partition = oee_mapping(&circuit, config.num_nodes);
        let hw = HardwareSpec::for_partition(&partition);

        group.bench_with_input(
            BenchmarkId::new("autocomm", config.label()),
            &(&circuit, &partition),
            |b, (circuit, partition)| {
                b.iter(|| black_box(AutoComm::new().compile(circuit, partition).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ferrari-baseline", config.label()),
            &(&circuit, &partition),
            |b, (circuit, partition)| {
                b.iter(|| black_box(compile_ferrari(circuit, partition, &hw).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gp-tp", config.label()),
            &(&circuit, &partition),
            |b, (circuit, partition)| {
                b.iter(|| black_box(compile_gp_tp(circuit, partition, &hw).unwrap()))
            },
        );
    }
    group.finish();
}

/// Design-choice ablations called out in DESIGN.md: the deferred-item
/// window that bounds Algorithm-1's lookahead, and the symmetric-gate
/// orientation pre-pass. Criterion tracks their compile-time cost; the
/// quality effect is asserted in `tests/edge_cases.rs`.
fn bench_design_choices(c: &mut Criterion) {
    let config = BenchConfig::new(Workload::Qaoa, 40, 4);
    let circuit = generate(&config);
    let unrolled = unroll_circuit(&circuit).unwrap();
    let partition = oee_mapping(&circuit, config.num_nodes);

    let mut group = c.benchmark_group("defer-window");
    for limit in [0usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            b.iter(|| {
                black_box(aggregate(
                    black_box(&unrolled),
                    &partition,
                    AggregateOptions { defer_limit: limit, ..AggregateOptions::default() },
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("orientation");
    group.bench_function("on", |b| {
        b.iter(|| black_box(autocomm::orient_symmetric_gates(black_box(&circuit), &partition)))
    });
    group.bench_function("full-pipeline-on", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&circuit, &partition).unwrap()))
    });
    group.bench_function("full-pipeline-off", |b| {
        let compiler = AutoComm::with_options(autocomm::AutoCommOptions {
            orient_symmetric: false,
            ..autocomm::AutoCommOptions::default()
        });
        b.iter(|| black_box(compiler.compile(&circuit, &partition).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_passes, bench_partitioner, bench_end_to_end, bench_design_choices);
criterion_main!(benches);
