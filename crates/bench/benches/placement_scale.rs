//! Placement-stage scaling benchmarks: gain-cached vs full-rescan OEE
//! refinement and parallel vs sequential cold scans on power-law
//! interaction graphs — the configuration whose asserting companion is the
//! `placement_scale_gate` binary (baseline:
//! `crates/bench/baselines/placement_scale.json`).
//!
//! Each tier refines the same pre-built sparse [`InteractionGraph`], so the
//! numbers isolate the partition-refinement stage from parsing and
//! aggregation. The full-rescan entries are the historical reference rail;
//! the gain-cached entries are the production path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dqc_circuit::{unroll_circuit, NodeId, Partition};
use dqc_partition::{oee_refine_on, InteractionGraph, OeeOptions, UniformDistance};
use dqc_workloads::large_sparse_circuit;

/// The gate binary's workload: a power-law circuit at `qubits` with 8 gates
/// per qubit, reduced to its interaction graph.
fn sparse_graph(qubits: usize) -> InteractionGraph {
    let circuit = large_sparse_circuit(qubits, qubits * 8, 0x5EED);
    let unrolled = unroll_circuit(&circuit).expect("sparse workload unrolls");
    InteractionGraph::from_circuit(&unrolled)
}

fn bench_placement_scale(c: &mut Criterion) {
    let nodes = 8usize;
    let node_map: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
    let cached = OeeOptions::default();
    let rescan = OeeOptions { full_rescan: true, sequential_scan: true, ..OeeOptions::default() };

    for qubits in [256usize, 1024] {
        let graph = sparse_graph(qubits);
        let initial = Partition::block(qubits, nodes).expect("divisible register");
        let name = format!("placement-scale-{qubits}");
        let mut group = c.benchmark_group(name.as_str());
        group.sample_size(10);
        group.bench_function("gain-cached", |b| {
            b.iter(|| {
                black_box(oee_refine_on(
                    black_box(&graph),
                    initial.clone(),
                    &node_map,
                    &UniformDistance,
                    cached,
                ))
            })
        });
        group.bench_function("full-rescan", |b| {
            b.iter(|| {
                black_box(oee_refine_on(
                    black_box(&graph),
                    initial.clone(),
                    &node_map,
                    &UniformDistance,
                    rescan,
                ))
            })
        });
        group.finish();
    }

    // The cold candidate scan in isolation (max_exchanges = 0), above the
    // parallel fan-out threshold.
    let qubits = 4096usize;
    let graph = sparse_graph(qubits);
    let initial = Partition::block(qubits, nodes).expect("divisible register");
    let scan_only = OeeOptions { max_exchanges: 0, ..OeeOptions::default() };
    let seq_only = OeeOptions { sequential_scan: true, ..scan_only };
    let mut group = c.benchmark_group("placement-cold-scan-4096");
    group.sample_size(10);
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(oee_refine_on(
                black_box(&graph),
                initial.clone(),
                &node_map,
                &UniformDistance,
                scan_only,
            ))
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(oee_refine_on(
                black_box(&graph),
                initial.clone(),
                &node_map,
                &UniformDistance,
                seq_only,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_placement_scale);
criterion_main!(benches);
