//! IR-scale benchmarks: end-to-end and per-pass compile throughput on a
//! ~10k-gate (~19k unrolled) random circuit, the configuration whose
//! pre-/post-refactor numbers are recorded in
//! `crates/bench/baselines/ir_10k_baseline.json`, plus the 100k- and
//! 1M-gate configurations of the scaling re-platform
//! (`crates/bench/baselines/ir_1m_baseline.json`; the asserting companion
//! is the `ir_scale_gate` binary).
//!
//! The `CommIr` re-platforming is a compile-*time* change, so these benches
//! are the acceptance evidence: `end-to-end/random-8-2-10000` must stay
//! ≥ 3× under the pre-refactor baseline in that JSON (which also snapshots
//! a wider random sweep and QFT-100).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autocomm::{
    aggregate_ir, assign, schedule, AggregateOptions, AutoComm, CommIr, ScheduleOptions,
};
use dqc_circuit::unroll_circuit;
use dqc_hardware::HardwareSpec;

/// The baseline configuration: 10k random gates on 8 qubits over 2 nodes
/// (deep circuits maximise commutation-scan pressure), seed 7.
fn baseline_inputs() -> (dqc_circuit::Circuit, dqc_circuit::Partition) {
    dqc_workloads::random_distributed_circuit(8, 2, 10_000, 7)
}

fn bench_end_to_end_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("end-to-end");
    let (circuit, partition) = baseline_inputs();
    group.bench_function("random-8-2-10000", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&circuit, &partition).unwrap()))
    });
    let (circuit, partition) = dqc_workloads::random_distributed_circuit(32, 4, 10_000, 7);
    group.bench_function("random-32-4-10000", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&circuit, &partition).unwrap()))
    });
    let qft = dqc_workloads::qft(100);
    let p = dqc_circuit::Partition::block(100, 4).unwrap();
    group.bench_function("qft-100-4", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&qft, &p).unwrap()))
    });
    group.finish();
}

fn bench_per_pass_10k(c: &mut Criterion) {
    let (raw, partition) = baseline_inputs();
    let oriented = autocomm::orient_symmetric_gates(&raw, &partition);
    let circuit = unroll_circuit(&oriented).unwrap();
    let ir = CommIr::build_shared(&circuit, &partition);
    let aggregated = aggregate_ir(ir.clone(), AggregateOptions::default());
    let assigned = assign(&aggregated);
    let placement = autocomm::Placement::identity(&partition);
    let hw = HardwareSpec::for_partition(&partition);

    let mut group = c.benchmark_group("pass-10k");
    group.bench_function("comm-ir", |b| {
        b.iter(|| black_box(CommIr::build_shared(black_box(&circuit), &partition)))
    });
    group.bench_function("aggregate", |b| {
        b.iter(|| black_box(aggregate_ir(ir.clone(), AggregateOptions::default())))
    });
    group.bench_function("assign", |b| b.iter(|| black_box(assign(black_box(&aggregated)))));
    group.bench_function("schedule", |b| {
        b.iter(|| {
            black_box(schedule(black_box(&assigned), &placement, &hw, ScheduleOptions::default()))
        })
    });
    group.finish();
}

fn bench_end_to_end_scale(c: &mut Criterion) {
    // 100k- and 1M-gate compiles take hundreds of ms to seconds each, so
    // the groups run few samples — the trend matters, not the variance.
    let mut group = c.benchmark_group("end-to-end-scale");
    group.sample_size(10);
    let (circuit, partition) = dqc_workloads::random_distributed_circuit(64, 8, 100_000, 7);
    group.bench_function("random-64-8-100000", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&circuit, &partition).unwrap()))
    });
    let (circuit, partition) = dqc_workloads::random_distributed_circuit(32, 4, 1_000_000, 7);
    group.bench_function("random-32-4-1000000", |b| {
        b.iter(|| black_box(AutoComm::new().compile(&circuit, &partition).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end_10k, bench_per_pass_10k, bench_end_to_end_scale);
criterion_main!(benches);
