//! Schedule-stage scaling benchmarks: buffered vs on-demand scheduling at
//! the 10k- and 100k-gate tiers on a comm-rich grid machine — the
//! configuration whose asserting companion is the `schedule_scale_gate`
//! binary (baseline: `crates/bench/baselines/schedule_scale.json`).
//!
//! Each tier schedules the same pre-compiled assigned program, so the
//! numbers isolate the schedule stage from the rest of the pipeline. The
//! buffered entries exercise the full dual-rail path (base walk, buffered
//! walk, strict-improvement comparison); the on-demand entries are the
//! single-rail floor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autocomm::{schedule, AssignedProgram, AutoComm, BufferPolicy, Placement, ScheduleOptions};
use dqc_hardware::{HardwareSpec, NetworkTopology};

/// Compiles a random distributed circuit on a 3×3 grid with a deep
/// comm-qubit budget, returning what the schedule stage consumes.
fn grid_workload(num_gates: usize) -> (AssignedProgram, Placement, HardwareSpec) {
    let (circuit, partition) = dqc_workloads::random_distributed_circuit(72, 9, num_gates, 7);
    let hw = HardwareSpec::for_partition(&partition)
        .with_comm_qubits(128)
        .expect("128 comm qubits is a valid budget")
        .with_topology(NetworkTopology::grid(3, 3).expect("3x3 grid is valid"))
        .expect("grid covers the 9 placed nodes");
    let compiled = AutoComm::new().compile_on(&circuit, &partition, &hw).expect("compiles");
    (compiled.assigned, compiled.placement, hw)
}

fn bench_schedule_scale(c: &mut Criterion) {
    let buffered = ScheduleOptions::default().with_buffer(BufferPolicy::Prefetch { depth: 4 });
    let on_demand = ScheduleOptions::default();
    for gates in [10_000usize, 100_000] {
        let (assigned, placement, hw) = grid_workload(gates);
        let name = format!("schedule-scale-{gates}");
        let mut group = c.benchmark_group(name.as_str());
        group.sample_size(10);
        group.bench_function("on-demand", |b| {
            b.iter(|| black_box(schedule(black_box(&assigned), &placement, &hw, on_demand)))
        });
        group.bench_function("buffered", |b| {
            b.iter(|| black_box(schedule(black_box(&assigned), &placement, &hw, buffered)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_schedule_scale);
criterion_main!(benches);
