//! Compile-throughput benchmarks for the interconnect topology layer.
//!
//! The routing tables are precomputed per `HardwareSpec`, so sparse
//! topologies should add only per-claim O(path) work to scheduling; these
//! benches watch that the re-platforming keeps all-to-all compiles at
//! their `ir_10k_baseline.json` speed and that sparse compiles stay in
//! the same order of magnitude. The *output* sensitivity (makespan / EPR
//! spread per topology) is recorded separately in
//! `baselines/topology_sensitivity.json` by the `topology_sweep` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autocomm::AutoComm;
use dqc_circuit::Partition;
use dqc_hardware::{HardwareSpec, NetworkTopology};

fn bench_compile_per_topology(c: &mut Criterion) {
    let circuit = dqc_workloads::qft(32);
    let partition = Partition::block(32, 4).unwrap();
    let mut group = c.benchmark_group("topology-compile");
    for topology in [
        NetworkTopology::all_to_all(4),
        NetworkTopology::linear(4).unwrap(),
        NetworkTopology::ring(4).unwrap(),
        NetworkTopology::grid(2, 2).unwrap(),
        NetworkTopology::star(4).unwrap(),
    ] {
        let name = format!("qft-32-4/{}", topology.name());
        let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
        group.bench_function(&name, |b| {
            b.iter(|| black_box(AutoComm::new().compile_on(&circuit, &partition, &hw).unwrap()))
        });
    }
    group.finish();
}

fn bench_routing_tables(c: &mut Criterion) {
    // Routing-table construction is once-per-spec; keep it cheap even on
    // larger machines.
    let mut group = c.benchmark_group("topology-build");
    group
        .bench_function("grid-8x8", |b| b.iter(|| black_box(NetworkTopology::grid(8, 8).unwrap())));
    group
        .bench_function("all-to-all-64", |b| b.iter(|| black_box(NetworkTopology::all_to_all(64))));
    group.finish();
}

criterion_group!(benches, bench_compile_per_topology, bench_routing_tables);
criterion_main!(benches);
