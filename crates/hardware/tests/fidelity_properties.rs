//! Property tests for the EPR decay model behind buffered scheduling: a
//! buffered (aged) pair must never report a *higher* fidelity than a fresh
//! one, for any machine parameters — otherwise the prefetch engine could
//! "launder" staleness into apparent quality.

use dqc_hardware::FidelityModel;
use proptest::prelude::*;

fn model(e_epr: f64, gamma_epr: f64) -> FidelityModel {
    FidelityModel { e_epr, gamma_epr, ..FidelityModel::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotone decay: more buffer age never means more fidelity.
    #[test]
    fn aged_pairs_never_beat_fresh_ones(
        e_epr in 0.0f64..0.5,
        gamma_epr in 0.0f64..0.1,
        age_a in 0.0f64..10_000.0,
        extra in 0.0f64..10_000.0,
    ) {
        let m = model(e_epr, gamma_epr);
        let young = m.epr_pair_fidelity(age_a);
        let old = m.epr_pair_fidelity(age_a + extra);
        prop_assert!(
            old <= young + 1e-12,
            "aging {age_a} -> {} raised fidelity {young} -> {old}",
            age_a + extra
        );
        prop_assert!(old <= m.epr_pair_fidelity(0.0) + 1e-12, "nothing beats a fresh pair");
    }

    /// The decayed fidelity stays a fidelity: within (0, 1], floored by the
    /// maximally mixed state's 1/4 whenever the fresh pair starts above it.
    #[test]
    fn decayed_fidelity_stays_physical(
        e_epr in 0.0f64..0.5,
        gamma_epr in 0.0f64..0.1,
        age in 0.0f64..1e6,
    ) {
        let m = model(e_epr, gamma_epr);
        let f = m.epr_pair_fidelity(age);
        prop_assert!(f > 0.0 && f <= 1.0, "fidelity {f} out of range");
        prop_assert!(f >= 0.25 - 1e-12, "decay undershot the mixed-state floor: {f}");
    }

    /// Aged communication infidelity is monotone in both pair count and
    /// age, and degenerates to the unaged formula at age zero.
    #[test]
    fn aged_infidelity_is_monotone(
        e_epr in 1e-6f64..0.3,
        gamma_epr in 1e-6f64..0.05,
        pairs in 1usize..200,
        age in 0.0f64..5_000.0,
    ) {
        let m = model(e_epr, gamma_epr);
        let fresh = m.aged_communication_infidelity(pairs, 0.0);
        let aged = m.aged_communication_infidelity(pairs, age);
        prop_assert!(aged >= fresh - 1e-12, "aging reduced infidelity: {fresh} -> {aged}");
        prop_assert!((fresh - m.communication_infidelity(pairs)).abs() < 1e-9);
        let more = m.aged_communication_infidelity(pairs + 1, age);
        prop_assert!(more >= aged - 1e-12, "an extra pair reduced infidelity");
    }
}
