//! Explicit interconnect topology of a modular quantum machine.
//!
//! The AutoComm paper assumes all-to-all EPR connectivity (§3); real
//! modular machines expose sparse link graphs where non-adjacent nodes
//! communicate through *entanglement swapping* along a routed path.
//! [`NetworkTopology`] makes that a first-class, pluggable layer:
//!
//! * a link graph over nodes, each link with an EPR-generation latency
//!   factor (multiplier on [`crate::LatencyModel::t_epr`]) and a capacity
//!   (concurrent EPR generations the link sustains);
//! * all-pairs shortest-path routing tables (weighted by latency factor,
//!   ties broken by hop count then lowest relay index, so routes are
//!   deterministic);
//! * standard constructors ([`NetworkTopology::all_to_all`],
//!   [`NetworkTopology::linear`], [`NetworkTopology::ring`],
//!   [`NetworkTopology::grid`], [`NetworkTopology::star`]) plus a small
//!   text format ([`NetworkTopology::from_text`]) and CLI-facing spec
//!   strings ([`NetworkTopology::parse_spec`]).
//!
//! `all_to_all` links carry unbounded capacity so that the topology layer
//! adds *no* constraint beyond per-node communication qubits — the
//! refactor's safety rail is that compiling against
//! `NetworkTopology::all_to_all(n)` is bit-identical to the historical
//! fully-connected model.

use std::fmt;

use dqc_circuit::NodeId;

use crate::HardwareError;

/// One undirected interconnect link between two nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Lower-indexed endpoint.
    pub a: NodeId,
    /// Higher-indexed endpoint.
    pub b: NodeId,
    /// Multiplier on the machine's base EPR preparation latency `t_epr`
    /// for pairs generated across this link (default 1.0).
    pub latency_factor: f64,
    /// Concurrent EPR generations the link sustains; `None` = unbounded
    /// (contention is then limited only by comm-qubit slots).
    pub capacity: Option<usize>,
}

impl Link {
    /// A link between `a` and `b` with default latency and unit capacity.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        let (a, b) = if a.index() <= b.index() { (a, b) } else { (b, a) };
        Link { a, b, latency_factor: 1.0, capacity: Some(1) }
    }

    /// Overrides the latency factor.
    #[must_use]
    pub fn with_latency_factor(mut self, f: f64) -> Self {
        self.latency_factor = f;
        self
    }

    /// Overrides the capacity (`None` = unbounded).
    #[must_use]
    pub fn with_capacity(mut self, c: Option<usize>) -> Self {
        self.capacity = c;
        self
    }
}

const UNREACHABLE: u32 = u32::MAX;

/// The interconnect link graph with precomputed shortest-path routing.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkTopology {
    name: String,
    num_nodes: usize,
    links: Vec<Link>,
    /// Flat `n×n` matrix: link index between `i` and `j`, or `UNREACHABLE`.
    link_of: Vec<u32>,
    /// Flat `n×n` weighted distance (sum of latency factors; `INFINITY` when
    /// unreachable).
    dist: Vec<f64>,
    /// Flat `n×n` hop counts.
    hops: Vec<u32>,
    /// Flat `n×n` next-hop node on the route `i → j`.
    next: Vec<u32>,
}

impl NetworkTopology {
    /// The paper's fully connected interconnect: every node pair shares a
    /// direct link with unbounded capacity, so only per-node communication
    /// qubits constrain concurrency. Compiling against this topology is
    /// bit-identical to the historical implicit all-to-all model.
    pub fn all_to_all(num_nodes: usize) -> Self {
        let mut links = Vec::new();
        for a in 0..num_nodes {
            for b in (a + 1)..num_nodes {
                links.push(Link::new(NodeId::new(a), NodeId::new(b)).with_capacity(None));
            }
        }
        NetworkTopology::from_links("all-to-all", num_nodes, links)
            .expect("all-to-all is always a valid topology")
    }

    /// A chain `0 – 1 – … – n-1`.
    ///
    /// # Errors
    ///
    /// [`HardwareError::ZeroNodes`] when `num_nodes` is zero.
    pub fn linear(num_nodes: usize) -> Result<Self, HardwareError> {
        if num_nodes == 0 {
            return Err(HardwareError::ZeroNodes);
        }
        let links = (1..num_nodes).map(|i| Link::new(NodeId::new(i - 1), NodeId::new(i))).collect();
        NetworkTopology::from_links("linear", num_nodes, links)
    }

    /// A cycle `0 – 1 – … – n-1 – 0`.
    ///
    /// # Errors
    ///
    /// [`HardwareError::ZeroNodes`] when `num_nodes` is zero;
    /// [`HardwareError::InvalidLink`] when `num_nodes < 3` (a 2-cycle would
    /// duplicate its only link).
    pub fn ring(num_nodes: usize) -> Result<Self, HardwareError> {
        if num_nodes == 0 {
            return Err(HardwareError::ZeroNodes);
        }
        if num_nodes < 3 {
            return Err(HardwareError::InvalidLink {
                a: 0,
                b: num_nodes - 1,
                reason: "a ring needs at least three nodes",
            });
        }
        let mut links: Vec<Link> =
            (1..num_nodes).map(|i| Link::new(NodeId::new(i - 1), NodeId::new(i))).collect();
        links.push(Link::new(NodeId::new(num_nodes - 1), NodeId::new(0)));
        NetworkTopology::from_links("ring", num_nodes, links)
    }

    /// A `rows × cols` mesh with nearest-neighbour links.
    ///
    /// # Errors
    ///
    /// [`HardwareError::ZeroNodes`] when either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Result<Self, HardwareError> {
        if rows == 0 || cols == 0 {
            return Err(HardwareError::ZeroNodes);
        }
        let at = |r: usize, c: usize| NodeId::new(r * cols + c);
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    links.push(Link::new(at(r, c), at(r, c + 1)));
                }
                if r + 1 < rows {
                    links.push(Link::new(at(r, c), at(r + 1, c)));
                }
            }
        }
        NetworkTopology::from_links(&format!("grid:{rows}x{cols}"), rows * cols, links)
    }

    /// A hub-and-spoke star: node 0 links to every other node.
    ///
    /// # Errors
    ///
    /// [`HardwareError::ZeroNodes`] when `num_nodes` is zero.
    pub fn star(num_nodes: usize) -> Result<Self, HardwareError> {
        if num_nodes == 0 {
            return Err(HardwareError::ZeroNodes);
        }
        let links = (1..num_nodes).map(|i| Link::new(NodeId::new(0), NodeId::new(i))).collect();
        NetworkTopology::from_links("star", num_nodes, links)
    }

    /// Builds a topology from an explicit link list, validating endpoints
    /// and precomputing the routing tables.
    ///
    /// # Errors
    ///
    /// [`HardwareError::InvalidLink`] for self-loops, out-of-range
    /// endpoints, duplicate links, or non-positive latency factors.
    pub fn from_links(
        name: &str,
        num_nodes: usize,
        links: Vec<Link>,
    ) -> Result<Self, HardwareError> {
        let mut link_of = vec![UNREACHABLE; num_nodes * num_nodes];
        for (idx, link) in links.iter().enumerate() {
            let (a, b) = (link.a.index(), link.b.index());
            if a == b {
                return Err(HardwareError::InvalidLink { a, b, reason: "self-loop" });
            }
            if a >= num_nodes || b >= num_nodes {
                return Err(HardwareError::InvalidLink { a, b, reason: "endpoint out of range" });
            }
            if link.latency_factor <= 0.0 || link.latency_factor.is_nan() {
                return Err(HardwareError::InvalidLink {
                    a,
                    b,
                    reason: "latency factor must be positive",
                });
            }
            if link.capacity == Some(0) {
                return Err(HardwareError::InvalidLink {
                    a,
                    b,
                    reason: "capacity must be positive (omit for unbounded)",
                });
            }
            if link_of[a * num_nodes + b] != UNREACHABLE {
                return Err(HardwareError::InvalidLink { a, b, reason: "duplicate link" });
            }
            link_of[a * num_nodes + b] = idx as u32;
            link_of[b * num_nodes + a] = idx as u32;
        }
        let mut t = NetworkTopology {
            name: name.to_owned(),
            num_nodes,
            links,
            link_of,
            dist: Vec::new(),
            hops: Vec::new(),
            next: Vec::new(),
        };
        t.build_routes();
        Ok(t)
    }

    /// Floyd–Warshall over latency factors with deterministic tie-breaking:
    /// lower weighted distance wins; ties prefer fewer hops, then the
    /// lowest-indexed relay (fixed by iteration order).
    fn build_routes(&mut self) {
        let n = self.num_nodes;
        let mut dist = vec![f64::INFINITY; n * n];
        let mut hops = vec![UNREACHABLE; n * n];
        let mut next = vec![UNREACHABLE; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
            hops[i * n + i] = 0;
            next[i * n + i] = i as u32;
        }
        for link in &self.links {
            let (a, b) = (link.a.index(), link.b.index());
            dist[a * n + b] = link.latency_factor;
            dist[b * n + a] = link.latency_factor;
            hops[a * n + b] = 1;
            hops[b * n + a] = 1;
            next[a * n + b] = b as u32;
            next[b * n + a] = a as u32;
        }
        const EPS: f64 = 1e-12;
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let dkj = dist[k * n + j];
                    if !dkj.is_finite() {
                        continue;
                    }
                    let cand = dik + dkj;
                    let cand_hops = hops[i * n + k].saturating_add(hops[k * n + j]);
                    let cur = dist[i * n + j];
                    let better = cand < cur - EPS
                        || ((cand - cur).abs() <= EPS && cand_hops < hops[i * n + j]);
                    if better {
                        dist[i * n + j] = cand;
                        hops[i * n + j] = cand_hops;
                        next[i * n + j] = next[i * n + k];
                    }
                }
            }
        }
        self.dist = dist;
        self.hops = hops;
        self.next = next;
    }

    /// Parses a CLI-facing topology spec string for a machine of
    /// `num_nodes` nodes: `all-to-all`, `linear`, `ring`, `star`, `grid`
    /// (most-square factorization of `num_nodes`), or `grid:RxC`.
    ///
    /// # Errors
    ///
    /// [`HardwareError::Parse`] for unknown names or a `grid:RxC` whose
    /// area disagrees with `num_nodes`; constructor errors pass through.
    pub fn parse_spec(spec: &str, num_nodes: usize) -> Result<Self, HardwareError> {
        let bad = |message: String| HardwareError::Parse { line: 0, message };
        match spec {
            "all-to-all" | "all_to_all" | "full" => Ok(NetworkTopology::all_to_all(num_nodes)),
            "linear" | "line" | "chain" => NetworkTopology::linear(num_nodes),
            "ring" | "cycle" => NetworkTopology::ring(num_nodes),
            "star" => NetworkTopology::star(num_nodes),
            "grid" => {
                // Most-square exact factorization (degenerates to linear
                // when num_nodes is prime).
                let mut rows = 1;
                for r in 1..=num_nodes {
                    if r * r > num_nodes {
                        break;
                    }
                    if num_nodes.is_multiple_of(r) {
                        rows = r;
                    }
                }
                NetworkTopology::grid(rows, num_nodes / rows)
            }
            other => {
                if let Some(dims) = other.strip_prefix("grid:") {
                    let (r, c) = dims
                        .split_once(['x', 'X'])
                        .ok_or_else(|| bad(format!("expected grid:RxC, got '{other}'")))?;
                    let rows = r
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| bad(format!("grid rows '{r}' is not a number")))?;
                    let cols = c
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| bad(format!("grid cols '{c}' is not a number")))?;
                    if rows * cols != num_nodes {
                        return Err(bad(format!(
                            "grid:{rows}x{cols} covers {} nodes but the machine has {num_nodes}",
                            rows * cols
                        )));
                    }
                    NetworkTopology::grid(rows, cols)
                } else {
                    Err(bad(format!(
                        "unknown topology '{other}' (expected all-to-all, linear, ring, star, \
                         grid, grid:RxC, or a topology file path)"
                    )))
                }
            }
        }
    }

    /// Parses the topology file format: a `nodes <N>` line followed by
    /// `link <a> <b> [latency=<F>] [capacity=<K|inf>]` lines; `#` starts a
    /// comment.
    ///
    /// ```text
    /// # a 4-node chain with one slow long-haul link
    /// nodes 4
    /// link 0 1
    /// link 1 2 latency=2.5 capacity=2
    /// link 2 3
    /// ```
    ///
    /// # Errors
    ///
    /// [`HardwareError::Parse`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, HardwareError> {
        let mut num_nodes: Option<usize> = None;
        let mut links = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let bad = |message: String| HardwareError::Parse { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            match words.next() {
                Some("nodes") => {
                    let v = words.next().ok_or_else(|| bad("nodes needs a count".into()))?;
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| bad(format!("'{v}' is not a positive node count")))?;
                    if num_nodes.replace(n).is_some() {
                        return Err(bad("duplicate 'nodes' line".into()));
                    }
                }
                Some("link") => {
                    let n = num_nodes
                        .ok_or_else(|| bad("'nodes <N>' must precede the first link".into()))?;
                    let parse_node = |w: Option<&str>| -> Result<NodeId, HardwareError> {
                        let v = w.ok_or_else(|| bad("link needs two endpoints".into()))?;
                        let i = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&i| i < n)
                            .ok_or_else(|| bad(format!("'{v}' is not a node index < {n}")))?;
                        Ok(NodeId::new(i))
                    };
                    let a = parse_node(words.next())?;
                    let b = parse_node(words.next())?;
                    let mut link = Link::new(a, b);
                    for opt in words {
                        if let Some(v) = opt.strip_prefix("latency=") {
                            let f = v
                                .parse::<f64>()
                                .ok()
                                .filter(|f| *f > 0.0)
                                .ok_or_else(|| bad(format!("bad latency factor '{v}'")))?;
                            link = link.with_latency_factor(f);
                        } else if let Some(v) = opt.strip_prefix("capacity=") {
                            let c = if v == "inf" {
                                None
                            } else {
                                Some(v.parse::<usize>().ok().filter(|&c| c > 0).ok_or_else(
                                    || bad(format!("bad capacity '{v}' (positive int or inf)")),
                                )?)
                            };
                            link = link.with_capacity(c);
                        } else {
                            return Err(bad(format!("unknown link option '{opt}'")));
                        }
                    }
                    links.push(link);
                }
                Some(other) => {
                    return Err(bad(format!("unknown directive '{other}'")));
                }
                None => unreachable!("blank lines were skipped"),
            }
        }
        let num_nodes = num_nodes
            .ok_or(HardwareError::Parse { line: 0, message: "missing 'nodes <N>'".into() })?;
        NetworkTopology::from_links("file", num_nodes, links)
    }

    /// The topology's display name (`all-to-all`, `linear`, `grid:2x3`,
    /// `file`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The links, in construction order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Index into [`NetworkTopology::links`] of the direct link between `a`
    /// and `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let i = self.link_of[a.index() * self.num_nodes + b.index()];
        (i != UNREACHABLE).then_some(i as usize)
    }

    /// Hop count of the routed path `a → b` (0 when `a == b`), or `None`
    /// when the nodes are disconnected.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let h = self.hops[a.index() * self.num_nodes + b.index()];
        (h != UNREACHABLE).then_some(h as usize)
    }

    /// Sum of latency factors along the routed path `a → b` (the path's
    /// EPR-generation weight), or `None` when disconnected.
    pub fn route_weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let d = self.dist[a.index() * self.num_nodes + b.index()];
        d.is_finite().then_some(d)
    }

    /// The routed node sequence `a, …, b` (just `[a]` when `a == b`), or
    /// `None` when disconnected.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        self.hop_distance(a, b)?;
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            cur = NodeId::new(self.next[cur.index() * self.num_nodes + b.index()] as usize);
            path.push(cur);
        }
        Some(path)
    }

    /// Whether every node pair has a route.
    pub fn is_connected(&self) -> bool {
        self.diameter().is_some()
    }

    /// The largest hop distance over all node pairs (`Some(0)` for a
    /// single-node machine, `None` when disconnected).
    pub fn diameter(&self) -> Option<usize> {
        let mut max = 0usize;
        for a in 0..self.num_nodes {
            for b in (a + 1)..self.num_nodes {
                max = max.max(self.hop_distance(NodeId::new(a), NodeId::new(b))?);
            }
        }
        Some(max)
    }

    /// Whether routing ever needs an intermediate relay (diameter > 1).
    pub fn needs_relays(&self) -> bool {
        self.diameter().map(|d| d > 1).unwrap_or(true)
    }
}

impl fmt::Display for NetworkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} nodes, {} links)", self.name, self.num_nodes, self.links.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn all_to_all_is_diameter_one() {
        let t = NetworkTopology::all_to_all(5);
        assert_eq!(t.links().len(), 10);
        assert_eq!(t.diameter(), Some(1));
        assert!(!t.needs_relays());
        assert_eq!(t.path(n(0), n(4)), Some(vec![n(0), n(4)]));
        assert_eq!(t.links()[0].capacity, None, "all-to-all links are uncontended");
    }

    #[test]
    fn linear_routes_through_the_chain() {
        let t = NetworkTopology::linear(4).unwrap();
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.hop_distance(n(0), n(3)), Some(3));
        assert_eq!(t.path(n(0), n(3)), Some(vec![n(0), n(1), n(2), n(3)]));
        assert_eq!(t.path(n(3), n(0)), Some(vec![n(3), n(2), n(1), n(0)]));
        assert_eq!(t.diameter(), Some(3));
        assert_eq!(t.link_between(n(1), n(2)), t.link_between(n(2), n(1)));
        assert_eq!(t.link_between(n(0), n(2)), None);
    }

    #[test]
    fn ring_takes_the_short_way_round() {
        let t = NetworkTopology::ring(6).unwrap();
        assert_eq!(t.hop_distance(n(0), n(5)), Some(1));
        assert_eq!(t.hop_distance(n(0), n(3)), Some(3));
        assert_eq!(t.diameter(), Some(3));
        assert!(NetworkTopology::ring(2).is_err());
    }

    #[test]
    fn grid_and_star_shapes() {
        let g = NetworkTopology::grid(2, 3).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.links().len(), 7);
        assert_eq!(g.hop_distance(n(0), n(5)), Some(3));
        let s = NetworkTopology::star(5).unwrap();
        assert_eq!(s.hop_distance(n(1), n(4)), Some(2));
        assert_eq!(s.path(n(1), n(4)), Some(vec![n(1), n(0), n(4)]));
        assert_eq!(s.diameter(), Some(2));
    }

    #[test]
    fn weighted_routing_prefers_the_cheap_path() {
        // Triangle where the direct 0–2 link is slower than relaying via 1.
        let links = vec![
            Link::new(n(0), n(1)),
            Link::new(n(1), n(2)),
            Link::new(n(0), n(2)).with_latency_factor(3.0),
        ];
        let t = NetworkTopology::from_links("custom", 3, links).unwrap();
        assert_eq!(t.path(n(0), n(2)), Some(vec![n(0), n(1), n(2)]));
        assert!((t.route_weight(n(0), n(2)).unwrap() - 2.0).abs() < 1e-12);
        // Equal weights prefer fewer hops.
        let links = vec![
            Link::new(n(0), n(1)),
            Link::new(n(1), n(2)),
            Link::new(n(0), n(2)).with_latency_factor(2.0),
        ];
        let t = NetworkTopology::from_links("custom", 3, links).unwrap();
        assert_eq!(t.path(n(0), n(2)), Some(vec![n(0), n(2)]));
    }

    #[test]
    fn invalid_links_are_rejected() {
        let loops = vec![Link::new(n(1), n(1))];
        assert!(matches!(
            NetworkTopology::from_links("x", 3, loops),
            Err(HardwareError::InvalidLink { reason: "self-loop", .. })
        ));
        let oob = vec![Link::new(n(0), n(9))];
        assert!(NetworkTopology::from_links("x", 3, oob).is_err());
        let dup = vec![Link::new(n(0), n(1)), Link::new(n(1), n(0))];
        assert!(matches!(
            NetworkTopology::from_links("x", 3, dup),
            Err(HardwareError::InvalidLink { reason: "duplicate link", .. })
        ));
        let zero_cap = vec![Link::new(n(0), n(1)).with_capacity(Some(0))];
        assert!(NetworkTopology::from_links("x", 3, zero_cap).is_err());
    }

    #[test]
    fn disconnected_pairs_have_no_route() {
        let t = NetworkTopology::from_links("x", 4, vec![Link::new(n(0), n(1))]).unwrap();
        assert!(!t.is_connected());
        assert_eq!(t.hop_distance(n(0), n(2)), None);
        assert_eq!(t.path(n(0), n(2)), None);
        assert_eq!(t.diameter(), None);
    }

    #[test]
    fn spec_strings_parse() {
        assert_eq!(NetworkTopology::parse_spec("all-to-all", 4).unwrap().diameter(), Some(1));
        assert_eq!(NetworkTopology::parse_spec("linear", 4).unwrap().diameter(), Some(3));
        assert_eq!(NetworkTopology::parse_spec("ring", 4).unwrap().diameter(), Some(2));
        assert_eq!(NetworkTopology::parse_spec("star", 4).unwrap().diameter(), Some(2));
        let g = NetworkTopology::parse_spec("grid", 6).unwrap();
        assert_eq!(g.name(), "grid:2x3");
        assert_eq!(NetworkTopology::parse_spec("grid:2x2", 4).unwrap().num_nodes(), 4);
        assert!(NetworkTopology::parse_spec("grid:2x3", 4).is_err());
        assert!(NetworkTopology::parse_spec("moebius", 4).is_err());
    }

    #[test]
    fn file_format_round_trips() {
        let text = "\
# comment line
nodes 4           # trailing comment
link 0 1
link 1 2 latency=2.5 capacity=2
link 2 3 capacity=inf
";
        let t = NetworkTopology::from_text(text).unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.links()[1].latency_factor, 2.5);
        assert_eq!(t.links()[1].capacity, Some(2));
        assert_eq!(t.links()[2].capacity, None);
        assert_eq!(t.hop_distance(n(0), n(3)), Some(3));
    }

    #[test]
    fn file_format_rejects_malformed_input() {
        for (text, needle) in [
            ("link 0 1\n", "must precede"),
            ("nodes 0\n", "positive"),
            ("nodes 2\nnodes 3\n", "duplicate"),
            ("nodes 2\nlink 0 5\n", "node index"),
            ("nodes 2\nlink 0 1 latency=-1\n", "latency"),
            ("nodes 2\nlink 0 1 capacity=0\n", "capacity"),
            ("nodes 2\nlink 0 1 frob=1\n", "unknown link option"),
            ("frobnicate\n", "unknown directive"),
            ("", "missing"),
        ] {
            match NetworkTopology::from_text(text) {
                Err(HardwareError::Parse { message, .. }) => {
                    assert!(message.contains(needle), "for {text:?}: {message}");
                }
                other => panic!("{text:?} should fail to parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_node_machines_are_trivially_connected() {
        let t = NetworkTopology::all_to_all(1);
        assert_eq!(t.diameter(), Some(0));
        assert_eq!(t.path(n(0), n(0)), Some(vec![n(0)]));
        assert!(NetworkTopology::linear(1).unwrap().is_connected());
    }
}
