//! Event-driven EPR buffering: per-node pair buffers and the resource
//! manager that separates *generation* events from *consumption* events.
//!
//! The legacy scheduler materializes every EPR pair through one monolithic
//! [`crate::Timeline::claim_comm`] call at the moment a burst consumes it:
//! the end-node communication slots are busy from generation start to
//! protocol completion, and bursts serialize behind link contention even
//! while comm qubits idle through long local-gate windows. Following
//! CollComm (arXiv:2208.06724), this module treats the communication
//! qubits of each node as an **EPR buffer** instead: a [`ResourceManager`]
//! issues *generation events* ahead of demand ([`Timeline::generate_routed`]
//! claims link channels and runs relay swap chains, then deposits the
//! heralded pair into the endpoint [`EprBuffer`]s) and serves *consumption
//! events* separately (a burst pops the matching buffered pair — keyed by
//! remote endpoint, FIFO in generation order — or blocks until one
//! matures). The buffer resource state is explicit in the schedule rather
//! than implicit in a mutable timeline, in the spirit of InQuIR
//! (arXiv:2302.00267).
//!
//! [`BufferPolicy`] selects the engine:
//!
//! * [`BufferPolicy::OnDemand`] — the bit-identical safety rail: every
//!   request goes through the legacy claim path, reproducing the historical
//!   scheduler exactly.
//! * [`BufferPolicy::Prefetch`] — generation for a request may begin once
//!   the consumption frontier is within `depth` requests of it, hiding
//!   entanglement generation behind computation while bounding how stale a
//!   buffered pair can get.
//! * [`BufferPolicy::Greedy`] — unbounded lookahead: every generation is
//!   issued as early as link capacity allows (maximal latency hiding,
//!   maximal pair staleness).

use std::collections::VecDeque;

use dqc_circuit::NodeId;

use crate::{CommClaim, PendingPair, Timeline};

/// When EPR pairs are generated relative to the bursts that consume them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BufferPolicy {
    /// Generate each pair at burst-consumption time through the legacy
    /// claim path — bit-identical to the pre-buffering scheduler.
    #[default]
    OnDemand,
    /// Generate pairs up to `depth` bursts ahead of the consumption
    /// frontier, buffer headroom permitting (`depth >= 1`).
    Prefetch {
        /// How many comm requests ahead of the frontier generation may
        /// start.
        depth: usize,
    },
    /// Generate every pair as early as link capacity allows (unbounded
    /// lookahead).
    Greedy,
}

impl BufferPolicy {
    /// The CLI spelling: `on-demand`, `prefetch:N`, or `greedy`.
    pub fn name(self) -> String {
        match self {
            BufferPolicy::OnDemand => "on-demand".to_owned(),
            BufferPolicy::Prefetch { depth } => format!("prefetch:{depth}"),
            BufferPolicy::Greedy => "greedy".to_owned(),
        }
    }

    /// Parses the [`BufferPolicy::name`] form (`prefetch` alone defaults to
    /// depth 4).
    pub fn parse(s: &str) -> Option<BufferPolicy> {
        match s {
            "on-demand" => Some(BufferPolicy::OnDemand),
            "greedy" => Some(BufferPolicy::Greedy),
            "prefetch" => Some(BufferPolicy::Prefetch { depth: 4 }),
            _ => {
                let depth = s.strip_prefix("prefetch:")?.parse::<usize>().ok()?;
                if depth == 0 {
                    None
                } else {
                    Some(BufferPolicy::Prefetch { depth })
                }
            }
        }
    }

    /// Whether this policy routes requests through the buffered engine
    /// (false only for [`BufferPolicy::OnDemand`]).
    pub fn is_buffered(self) -> bool {
        !matches!(self, BufferPolicy::OnDemand)
    }

    /// The lookahead window in comm requests (`usize::MAX` for greedy, 0
    /// for on-demand).
    pub fn lookahead(self) -> usize {
        match self {
            BufferPolicy::OnDemand => 0,
            BufferPolicy::Prefetch { depth } => depth,
            BufferPolicy::Greedy => usize::MAX,
        }
    }
}

/// One node's view of its buffered pairs: a FIFO of heralded-but-unconsumed
/// pairs keyed by remote endpoint, bounded by the node's comm-qubit budget.
#[derive(Clone, Debug)]
pub struct EprBuffer {
    capacity: usize,
    /// `(remote endpoint, herald time, request index)` in generation order.
    pairs: VecDeque<(NodeId, f64, usize)>,
}

impl EprBuffer {
    /// An empty buffer with `capacity` slots (the node's comm-qubit
    /// budget).
    pub fn new(capacity: usize) -> Self {
        EprBuffer { capacity, pairs: VecDeque::new() }
    }

    /// Slots available for further prefetched pairs.
    pub fn headroom(&self) -> usize {
        self.capacity.saturating_sub(self.pairs.len())
    }

    /// Buffered (heralded, unconsumed) pairs.
    pub fn occupancy(&self) -> usize {
        self.pairs.len()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposits a heralded pair bound for `remote`.
    fn deposit(&mut self, remote: NodeId, ready: f64, request: usize) {
        debug_assert!(self.pairs.len() < self.capacity, "buffer over capacity");
        self.pairs.push_back((remote, ready, request));
    }

    /// Pops the oldest pair matching `remote` (FIFO per endpoint). Returns
    /// its herald time.
    fn pop(&mut self, remote: NodeId, request: usize) -> Option<f64> {
        let at = self.pairs.iter().position(|&(r, _, req)| r == remote && req == request)?;
        self.pairs.remove(at).map(|(_, ready, _)| ready)
    }
}

/// Aggregate statistics of one buffered (or on-demand) scheduling run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BufferMetrics {
    /// Total comm requests served.
    pub requests: usize,
    /// Requests whose pair was generated ahead of consumption (prefetch
    /// hits).
    pub prefetch_hits: usize,
    /// Requests generated at consumption time (buffer empty, capacity
    /// constrained, or on-demand policy).
    pub prefetch_misses: usize,
    /// Summed time bursts waited past their ready point for a pair to
    /// mature (`max(0, available - need)` per request).
    pub epr_wait_total: f64,
    /// Summed time heralded pairs aged in a buffer before consumption.
    pub pair_age_total: f64,
    /// Histogram of per-node buffer occupancy, sampled at every deposit and
    /// pop transition: `occupancy_hist[k]` counts transitions that left a
    /// buffer holding `k` pairs.
    pub occupancy_hist: Vec<u64>,
}

impl BufferMetrics {
    /// Mean time a burst waited for its EPR pair, in CX units.
    pub fn mean_epr_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.epr_wait_total / self.requests as f64
        }
    }

    /// Mean age of a *buffered* pair at consumption, in CX units —
    /// averaged over prefetch hits (misses never enter a buffer).
    pub fn mean_pair_age(&self) -> f64 {
        if self.prefetch_hits == 0 {
            0.0
        } else {
            self.pair_age_total / self.prefetch_hits as f64
        }
    }

    /// Fraction of requests served from the buffer.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.requests as f64
        }
    }

    fn sample_occupancy(&mut self, occupancy: usize) {
        if self.occupancy_hist.len() <= occupancy {
            self.occupancy_hist.resize(occupancy + 1, 0);
        }
        self.occupancy_hist[occupancy] += 1;
    }
}

/// The discrete-event resource manager: owns the [`Timeline`] plus one
/// [`EprBuffer`] per node, and serves the scheduler's comm requests under a
/// [`BufferPolicy`].
///
/// The caller announces the full request sequence up front (endpoint pairs
/// in consumption order — the schedule walk is a topological linearization
/// of the program DAG, so the sequence is the lookahead frontier), then
/// calls [`ResourceManager::acquire`] once per request in that order.
/// Under a buffered policy the manager issues generation events for
/// requests inside the lookahead window before serving the current one;
/// generation is issued strictly in request order so link-channel
/// assignment stays deterministic, and stalls at the first request whose
/// endpoints lack buffer headroom (those fall back to on-demand generation
/// at consumption).
#[derive(Clone, Debug)]
pub struct ResourceManager {
    tl: Timeline,
    policy: BufferPolicy,
    requests: Vec<(NodeId, NodeId)>,
    /// Consumption frontier: index of the next request to be acquired.
    cursor: usize,
    /// Next request index eligible for generation issue.
    next_issue: usize,
    /// Generated-but-unconsumed pairs, by request index.
    pending: Vec<Option<PendingPair>>,
    buffers: Vec<EprBuffer>,
    metrics: BufferMetrics,
}

impl ResourceManager {
    /// A manager over `tl` serving `requests` (endpoint pairs in
    /// consumption order) under `policy`. `capacity` is the per-node
    /// comm-qubit budget bounding each [`EprBuffer`].
    pub fn new(
        tl: Timeline,
        policy: BufferPolicy,
        requests: Vec<(NodeId, NodeId)>,
        capacity: usize,
    ) -> Self {
        let nodes = tl.topology().num_nodes();
        let pending = vec![None; requests.len()];
        ResourceManager {
            tl,
            policy,
            requests,
            cursor: 0,
            next_issue: 0,
            pending,
            buffers: vec![EprBuffer::new(capacity); nodes],
            metrics: BufferMetrics::default(),
        }
    }

    /// The underlying timeline (gate scheduling, releases, queries).
    pub fn timeline(&self) -> &Timeline {
        &self.tl
    }

    /// Mutable access to the underlying timeline.
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.tl
    }

    /// The policy in force.
    pub fn policy(&self) -> BufferPolicy {
        self.policy
    }

    /// Serves the next comm request: `(a, b)` must match the announced
    /// sequence. `earliest` is the legacy generation bound (0 under EPR
    /// prefetching, the burst's need time under plain greedy); `need` is
    /// when the consuming burst could start, used for wait accounting.
    ///
    /// Under [`BufferPolicy::OnDemand`] this is exactly
    /// [`Timeline::claim_comm`]. Under a buffered policy the matching
    /// buffered pair is popped (blocking until it matures), or the pair is
    /// generated on demand when the buffer missed; either way the returned
    /// claim releases through the standard `release_comm` family.
    ///
    /// # Panics
    ///
    /// Panics if more requests are served than announced, or (debug only)
    /// if the endpoints diverge from the announced sequence.
    pub fn acquire(&mut self, a: NodeId, b: NodeId, earliest: f64, need: f64) -> CommClaim {
        if !self.policy.is_buffered() {
            self.metrics.requests += 1;
            let claim = self.tl.claim_comm(a, b, earliest);
            self.metrics.epr_wait_total += (claim.epr_ready - need).max(0.0);
            self.metrics.prefetch_misses += 1;
            return claim;
        }
        assert!(self.cursor < self.requests.len(), "more comm requests served than announced");
        debug_assert_eq!(
            self.requests[self.cursor],
            (a, b),
            "comm request {} diverged from the announced sequence",
            self.cursor
        );

        let (pair, hit) = match self.pending[self.cursor].take() {
            Some(p) => {
                self.pop(self.cursor, &p);
                (p, true)
            }
            None => {
                // Buffer miss (capacity stall or first sighting): generate
                // on demand at the legacy bound; the pair goes straight to
                // consumption without entering a buffer.
                let p = self.tl.generate_routed(a, b, earliest);
                if self.next_issue <= self.cursor {
                    self.next_issue = self.cursor + 1;
                }
                (p, false)
            }
        };
        // Prefetch generation events for upcoming requests inside the
        // lookahead window, frontier-stamped: a request entering the window
        // now may not start generating before `need` — the moment the
        // engine "learned" of it.
        self.issue_window(need);
        let claim = self.tl.attach_pair(&pair);

        self.metrics.requests += 1;
        if hit {
            self.metrics.prefetch_hits += 1;
            // Age from herald to the moment the burst actually starts.
            self.metrics.pair_age_total += (need.max(claim.epr_ready) - pair.ready).max(0.0);
        } else {
            self.metrics.prefetch_misses += 1;
        }
        self.metrics.epr_wait_total += (claim.epr_ready - need).max(0.0);
        self.cursor += 1;
        claim
    }

    /// Whether `node` can store one more heralded pair: buffered pairs
    /// *plus* slots held open by live claims must stay inside the
    /// comm-qubit budget, so prefetching never over-subscribes a node's
    /// physical storage. (A cold-start miss attaching while the buffer is
    /// full can still load transiently — the incoming half arrives as its
    /// protocol starts — but steady-state occupancy is budget-bounded.)
    fn node_headroom(&self, node: NodeId) -> bool {
        self.buffers[node.index()].occupancy() + self.tl.held_slots(node)
            < self.buffers[node.index()].capacity()
    }

    /// Issues generation for every not-yet-issued request in
    /// `(cursor, cursor + depth]` with buffer headroom at both endpoints,
    /// in request order; stalls at the first capacity-constrained request
    /// so link-channel assignment stays deterministic.
    fn issue_window(&mut self, frontier_time: f64) {
        let end = self.cursor.saturating_add(self.policy.lookahead()).min(self.requests.len() - 1);
        while self.next_issue <= end {
            let j = self.next_issue;
            let (a, b) = self.requests[j];
            if !self.node_headroom(a) || !self.node_headroom(b) || !self.tl.can_generate(a, b) {
                break;
            }
            let pair = self.tl.generate_routed(a, b, frontier_time);
            self.deposit(j, &pair);
            self.pending[j] = Some(pair);
            self.next_issue = j + 1;
        }
    }

    fn deposit(&mut self, request: usize, pair: &PendingPair) {
        self.buffers[pair.a.index()].deposit(pair.b, pair.ready, request);
        self.buffers[pair.b.index()].deposit(pair.a, pair.ready, request);
        let (oa, ob) =
            (self.buffers[pair.a.index()].occupancy(), self.buffers[pair.b.index()].occupancy());
        self.metrics.sample_occupancy(oa);
        self.metrics.sample_occupancy(ob);
    }

    fn pop(&mut self, request: usize, pair: &PendingPair) {
        let ra = self.buffers[pair.a.index()].pop(pair.b, request);
        let rb = self.buffers[pair.b.index()].pop(pair.a, request);
        debug_assert!(ra.is_some() && rb.is_some(), "buffered pair missing from an endpoint");
        let (oa, ob) =
            (self.buffers[pair.a.index()].occupancy(), self.buffers[pair.b.index()].occupancy());
        self.metrics.sample_occupancy(oa);
        self.metrics.sample_occupancy(ob);
    }

    /// Finishes the run, returning the timeline and the accumulated buffer
    /// statistics.
    pub fn finish(self) -> (Timeline, BufferMetrics) {
        (self.tl, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HardwareSpec, NetworkTopology};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            BufferPolicy::OnDemand,
            BufferPolicy::Prefetch { depth: 1 },
            BufferPolicy::Prefetch { depth: 16 },
            BufferPolicy::Greedy,
        ] {
            assert_eq!(BufferPolicy::parse(&p.name()), Some(p));
        }
        assert_eq!(BufferPolicy::parse("prefetch"), Some(BufferPolicy::Prefetch { depth: 4 }));
        assert_eq!(BufferPolicy::parse("prefetch:0"), None);
        assert_eq!(BufferPolicy::parse("prefetch:x"), None);
        assert_eq!(BufferPolicy::parse("bogus"), None);
    }

    #[test]
    fn on_demand_acquire_matches_legacy_claims() {
        let hw = HardwareSpec::symmetric(3);
        let mut legacy = Timeline::new(6, &hw);
        let mut rm = ResourceManager::new(Timeline::new(6, &hw), BufferPolicy::OnDemand, vec![], 2);
        let want = legacy.claim_comm(n(0), n(1), 0.0);
        let got = rm.acquire(n(0), n(1), 0.0, 0.0);
        assert_eq!(want, got);
        let (_, metrics) = rm.finish();
        assert_eq!(metrics.requests, 1);
        assert_eq!(metrics.prefetch_hits, 0);
    }

    #[test]
    fn prefetched_pair_is_ready_at_consumption() {
        // Two requests; the second is generated while the first runs, so
        // its pair is already heralded when consumed.
        let hw = HardwareSpec::symmetric(3);
        let requests = vec![(n(0), n(1)), (n(0), n(2))];
        let mut rm = ResourceManager::new(
            Timeline::new(6, &hw),
            BufferPolicy::Prefetch { depth: 1 },
            requests,
            2,
        );
        let c1 = rm.acquire(n(0), n(1), 0.0, 0.0);
        assert_eq!(c1.epr_ready, 12.0);
        rm.timeline_mut().release_comm(&c1, 40.0);
        let c2 = rm.acquire(n(0), n(2), 0.0, 40.0);
        // Generated at frontier time 0, heralded at 12, consumed at 40 —
        // zero wait, 28 units of buffer age.
        assert_eq!(c2.epr_ready, 12.0, "the buffered pair was ready long before the burst");
        rm.timeline_mut().release_comm(&c2, 50.0);
        let (_, metrics) = rm.finish();
        assert_eq!(metrics.requests, 2);
        assert_eq!(metrics.prefetch_hits, 1);
        assert_eq!(metrics.prefetch_misses, 1);
        assert!((metrics.pair_age_total - 28.0).abs() < 1e-9);
        // Only the cold-start miss waited (12 units of exposed generation);
        // the prefetched pair cost the second burst nothing.
        assert!((metrics.epr_wait_total - 12.0).abs() < 1e-9);
        assert!(metrics.occupancy_hist.len() >= 2);
    }

    #[test]
    fn capacity_stalls_lookahead_until_a_pop() {
        // Capacity 1 per node: the window cannot run ahead of consumption
        // by more than one pair per endpoint.
        let hw = HardwareSpec::symmetric(2).with_comm_qubits(1).unwrap();
        let requests = vec![(n(0), n(1)); 3];
        let mut rm = ResourceManager::new(Timeline::new(4, &hw), BufferPolicy::Greedy, requests, 1);
        let c1 = rm.acquire(n(0), n(1), 0.0, 0.0);
        rm.timeline_mut().release_comm(&c1, 20.0);
        let c2 = rm.acquire(n(0), n(1), 0.0, 20.0);
        rm.timeline_mut().release_comm(&c2, 40.0);
        let c3 = rm.acquire(n(0), n(1), 0.0, 40.0);
        rm.timeline_mut().release_comm(&c3, 60.0);
        let (_, metrics) = rm.finish();
        assert_eq!(metrics.requests, 3);
        // Request 0 is always a miss; the stalled window turns 1 and 2 into
        // frontier-time issues (hits once the buffer frees).
        assert!(metrics.prefetch_hits >= 1, "{metrics:?}");
    }

    #[test]
    fn buffered_generation_frees_end_slots_during_generation() {
        // Legacy: the end slot is busy from generation start. Buffered: the
        // slot is claimed only at attach, so a pair heralded at 12 but
        // consumed at 30 leaves the slot free before 30.
        let hw = HardwareSpec::symmetric(2);
        let mut tl = Timeline::new(4, &hw);
        let pair = tl.generate_routed(n(0), n(1), 0.0);
        assert_eq!(pair.ready, 12.0);
        assert_eq!(pair.hops, 1);
        assert_eq!(tl.epr_pairs_consumed(), 1);
        // Both nodes still have every slot free.
        assert_eq!(tl.node_slot_free_at(n(0)), 0.0);
        let claim = tl.attach_pair(&pair);
        assert_eq!(claim.epr_ready, 12.0);
        tl.release_comm(&claim, 30.0);
        assert_eq!(tl.makespan(), 30.0);
    }

    #[test]
    fn multi_hop_generation_runs_the_swap_chain() {
        let hw =
            HardwareSpec::symmetric(3).with_topology(NetworkTopology::linear(3).unwrap()).unwrap();
        let mut tl = Timeline::new(6, &hw);
        let lat = *tl.latency();
        let pair = tl.generate_routed(n(0), n(2), 0.0);
        assert_eq!(pair.hops, 2);
        assert!((pair.ready - (lat.t_epr + lat.entanglement_swap())).abs() < 1e-9);
        assert_eq!(tl.epr_pairs_consumed(), 2);
        assert_eq!(tl.swaps_performed(), 1);
        // The relay's slots were busy until the swap completed.
        assert_eq!(tl.node_slot_free_at(n(1)), pair.ready);
        let claim = tl.attach_pair(&pair);
        tl.release_comm(&claim, claim.epr_ready);
    }
}
