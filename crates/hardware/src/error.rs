//! Hardware-model validation errors.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating a hardware model.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum HardwareError {
    /// A machine needs at least one node.
    ZeroNodes,
    /// A node without communication qubits cannot participate in DQC.
    ZeroCommQubits,
    /// A topology's node count disagrees with the machine's.
    TopologyNodeMismatch {
        /// Nodes in the machine spec.
        spec_nodes: usize,
        /// Nodes in the topology.
        topology_nodes: usize,
    },
    /// Two nodes have no path between them, so remote gates between their
    /// qubits can never be implemented.
    Disconnected {
        /// One node of the unreachable pair.
        a: usize,
        /// The other node.
        b: usize,
    },
    /// A link references a node outside the topology, or loops a node onto
    /// itself.
    InvalidLink {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Why the link is rejected.
        reason: &'static str,
    },
    /// Multi-hop routing needs at least two communication qubits on every
    /// relay node (one per adjacent hop of a swap chain).
    InsufficientRelayQubits {
        /// The configured per-node budget.
        comm_qubits: usize,
    },
    /// A topology specification string or file could not be parsed.
    Parse {
        /// Line number (1-based) when the source is a file, 0 for a spec
        /// string.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareError::ZeroNodes => write!(f, "a machine needs at least one node"),
            HardwareError::ZeroCommQubits => {
                write!(f, "each node needs at least one communication qubit")
            }
            HardwareError::TopologyNodeMismatch { spec_nodes, topology_nodes } => write!(
                f,
                "topology covers {topology_nodes} node(s) but the machine has {spec_nodes}"
            ),
            HardwareError::Disconnected { a, b } => {
                write!(f, "nodes {a} and {b} are disconnected in the interconnect topology")
            }
            HardwareError::InvalidLink { a, b, reason } => {
                write!(f, "invalid link {a}–{b}: {reason}")
            }
            HardwareError::InsufficientRelayQubits { comm_qubits } => write!(
                f,
                "multi-hop routing needs ≥ 2 communication qubits per node for \
                 entanglement swapping, but the budget is {comm_qubits}"
            ),
            HardwareError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "invalid topology: {message}")
                } else {
                    write!(f, "invalid topology (line {line}): {message}")
                }
            }
        }
    }
}

impl Error for HardwareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_facts() {
        let e = HardwareError::TopologyNodeMismatch { spec_nodes: 4, topology_nodes: 6 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('6'));
        let e = HardwareError::Parse { line: 3, message: "bad link".into() };
        assert!(e.to_string().contains("line 3"));
        let e = HardwareError::Disconnected { a: 0, b: 2 };
        assert!(e.to_string().contains("disconnected"));
    }
}
