//! Resource-constrained event timeline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dqc_circuit::{Gate, NodeId, QubitId};

use crate::{HardwareSpec, LatencyModel, NetworkTopology};

/// A finite, non-NaN timeline instant, totally ordered so free slots and
/// channels can live in min-heaps (`f64` alone is not [`Ord`]).
#[derive(Clone, Copy, Debug, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap of `(free_at, index)` entries: earliest time first, lowest
/// index among ties — exactly the deterministic tie-break the linear scans
/// in [`Timeline::best_slot`] / [`Timeline::best_channel`] use, so the
/// indexed and linear-scan engines pick identical resources.
type FreeQueue = BinaryHeap<Reverse<(TimeKey, usize)>>;

fn free_queue(times: &[f64]) -> FreeQueue {
    times
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_finite())
        .map(|(i, &t)| Reverse((TimeKey(t), i)))
        .collect()
}

/// A claim on one communication-qubit slot at each of two end nodes,
/// produced by [`Timeline::claim_comm`]. The claim covers end-to-end
/// entanglement establishment — a single EPR generation on adjacent nodes,
/// or a routed swap chain (per-hop generations plus Bell measurements at
/// every relay) on sparse topologies — and stays open (both end slots busy)
/// until [`Timeline::release_comm`]. Relay-node slots claimed by a
/// multi-hop route free themselves at `epr_ready` (the Bell measurements
/// consume them).
#[derive(Clone, Debug, PartialEq)]
pub struct CommClaim {
    /// First endpoint node.
    pub node_a: NodeId,
    /// Slot index used at `node_a`.
    pub slot_a: usize,
    /// Second endpoint node.
    pub node_b: NodeId,
    /// Slot index used at `node_b`.
    pub slot_b: usize,
    /// When the first hop's EPR preparation starts.
    pub start: f64,
    /// When end-to-end entanglement is ready (last hop generated plus one
    /// entanglement swap per relay).
    pub epr_ready: f64,
    /// Hops of the routed path (1 on adjacent pairs and all-to-all).
    pub hops: usize,
}

/// An EPR pair whose generation has been committed to the timeline but
/// whose end-node communication slots have **not** been claimed yet — the
/// unit of work a [`crate::ResourceManager`] keeps in its per-node
/// [`crate::EprBuffer`]s between generation and consumption.
///
/// Produced by [`Timeline::generate_routed`]; turned into a live
/// [`CommClaim`] by [`Timeline::attach_pair`] when a burst consumes it.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingPair {
    /// First endpoint node.
    pub a: NodeId,
    /// Second endpoint node.
    pub b: NodeId,
    /// When the first hop's EPR preparation starts.
    pub start: f64,
    /// When end-to-end entanglement is heralded (last hop generated plus
    /// one entanglement swap per relay). The pair occupies an end-node
    /// buffer slot only from this moment on.
    pub ready: f64,
    /// Hops of the routed path (1 on adjacent pairs and all-to-all).
    pub hops: usize,
}

/// What one [`Timeline::run_hops`] routed generation produced.
struct HopPlan {
    /// When the first hop's preparation starts.
    first_start: f64,
    /// End-to-end readiness (slowest hop plus one swap per relay).
    epr_ready: f64,
    /// Hops of the routed path.
    hops: usize,
}

/// One recorded interval on the timeline (for validation and inspection).
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// Human-readable label (e.g. `"epr"`, `"swap"`, `"cat-entangle"`,
    /// `"cx"`).
    pub label: String,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// Logical qubits kept busy for the whole interval.
    pub qubits: Vec<QubitId>,
    /// Communication slots `(node, slot)` kept busy for the whole interval.
    pub slots: Vec<(NodeId, usize)>,
}

/// Tracks per-qubit availability, per-node communication-qubit slots, and
/// per-link EPR-generation channels while a scheduler lays out a
/// distributed program; counts EPR pairs (one per *hop*), entanglement
/// swaps, per-link traffic, and the overall makespan.
///
/// ```
/// use dqc_circuit::{Gate, NodeId, QubitId};
/// use dqc_hardware::{HardwareSpec, Timeline};
///
/// let hw = HardwareSpec::symmetric(2);
/// let mut tl = Timeline::new(4, &hw);
/// let (s, e) = tl.schedule_gate(&Gate::cx(QubitId::new(0), QubitId::new(1)));
/// assert_eq!((s, e), (0.0, 1.0));
/// let claim = tl.claim_comm(NodeId::new(0), NodeId::new(1), 0.0);
/// assert_eq!(claim.epr_ready, 12.0);
/// tl.release_comm(&claim, 20.0);
/// assert_eq!(tl.epr_pairs_consumed(), 1);
/// assert_eq!(tl.makespan(), 20.0);
/// ```
#[derive(Clone, Debug)]
pub struct Timeline {
    latency: LatencyModel,
    topology: NetworkTopology,
    qubit_free: Vec<f64>,
    slot_free: Vec<Vec<f64>>,
    /// Per-link EPR-generation channels (`links[i]` with capacity `c` gets
    /// `c` entries; unbounded links get an empty vec and are never
    /// contended).
    link_free: Vec<Vec<f64>>,
    /// EPR pairs generated per link.
    link_traffic: Vec<usize>,
    epr_count: usize,
    swap_count: usize,
    makespan: f64,
    events: Option<Vec<TimelineEvent>>,
    /// Earliest-free indexes (off = the historical linear-scan lookups,
    /// kept as the `schedule_scale` reference rail; see
    /// [`Timeline::with_linear_scan_reference`]). When on, `slot_queue`
    /// mirrors the *finite* entries of `slot_free` per node, `link_queue`
    /// mirrors `link_free` per link, and `free_slots` counts each node's
    /// finite slots — all maintained incrementally on claim/release so the
    /// per-claim lookups drop from O(slots)/O(capacity) scans to heap
    /// peeks and pops.
    indexed: bool,
    slot_queue: Vec<FreeQueue>,
    free_slots: Vec<usize>,
    link_queue: Vec<FreeQueue>,
}

impl Timeline {
    /// A fresh timeline for `num_qubits` logical qubits on machine `hw`.
    pub fn new(num_qubits: usize, hw: &HardwareSpec) -> Self {
        let topology = hw.topology().clone();
        let link_free =
            topology.links().iter().map(|l| vec![0.0; l.capacity.unwrap_or(0)]).collect::<Vec<_>>();
        let link_traffic = vec![0; topology.links().len()];
        let slot_free = vec![vec![0.0; hw.comm_qubits_per_node()]; hw.num_nodes()];
        let slot_queue = slot_free.iter().map(|s| free_queue(s)).collect();
        let free_slots = slot_free.iter().map(Vec::len).collect();
        let link_queue = link_free.iter().map(|c| free_queue(c)).collect();
        Timeline {
            latency: *hw.latency(),
            topology,
            qubit_free: vec![0.0; num_qubits],
            slot_free,
            link_free,
            link_traffic,
            epr_count: 0,
            swap_count: 0,
            makespan: 0.0,
            events: None,
            indexed: true,
            slot_queue,
            free_slots,
            link_queue,
        }
    }

    /// Enables event recording (needed by [`crate::validate_events`]).
    #[must_use]
    pub fn with_recording(mut self) -> Self {
        self.events = Some(Vec::new());
        self
    }

    /// Disables the earliest-free indexes: every slot/channel lookup falls
    /// back to the historical linear scans. The two modes are pinned to
    /// identical schedules (same claims, same event log) by the scheduler
    /// property suite; this reference mode exists so the `schedule_scale`
    /// gate can measure the indexes against the engine they replaced in
    /// one process.
    #[must_use]
    pub fn with_linear_scan_reference(mut self) -> Self {
        self.indexed = false;
        self.slot_queue.clear();
        self.free_slots.clear();
        self.link_queue.clear();
        self
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The interconnect topology in force.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Earliest time qubit `q` is free.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit_free_at(&self, q: QubitId) -> f64 {
        self.qubit_free[q.index()]
    }

    /// Earliest time at which `node` has a free communication slot.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_slot_free_at(&self, node: NodeId) -> f64 {
        if self.indexed {
            self.slot_queue[node.index()].peek().map_or(f64::INFINITY, |Reverse((t, _))| t.0)
        } else {
            self.slot_free[node.index()].iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Communication slots of `node` currently held open by unreleased
    /// claims (the buffered engine counts these against prefetch headroom
    /// so buffered pairs plus live claims never exceed the comm-qubit
    /// budget).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn held_slots(&self, node: NodeId) -> usize {
        if self.indexed {
            self.slot_free[node.index()].len() - self.free_slots[node.index()]
        } else {
            self.slot_free[node.index()].iter().filter(|t| t.is_infinite()).count()
        }
    }

    /// Schedules a gate as soon as its operands are free; returns
    /// `(start, end)`.
    pub fn schedule_gate(&mut self, gate: &Gate) -> (f64, f64) {
        self.schedule_gate_after(gate, 0.0)
    }

    /// Schedules a gate no earlier than `earliest`; returns `(start, end)`.
    pub fn schedule_gate_after(&mut self, gate: &Gate, earliest: f64) -> (f64, f64) {
        let start =
            gate.qubits().iter().map(|q| self.qubit_free[q.index()]).fold(earliest, f64::max);
        let end = start + self.latency.gate(gate);
        for q in gate.qubits() {
            self.qubit_free[q.index()] = end;
        }
        self.makespan = self.makespan.max(end);
        self.record(gate.kind().name().to_owned(), start, end, gate.qubits().to_vec(), vec![]);
        (start, end)
    }

    /// Marks `qubits` busy over `[start, end)` with a labelled event
    /// (protocol phases that are not plain gates).
    pub fn occupy_qubits(&mut self, label: &str, qubits: &[QubitId], start: f64, end: f64) {
        for q in qubits {
            self.qubit_free[q.index()] = self.qubit_free[q.index()].max(end);
        }
        self.makespan = self.makespan.max(end);
        self.record(label.to_owned(), start, end, qubits.to_vec(), vec![]);
    }

    /// Establishes end-to-end entanglement between `a` and `b` along the
    /// topology's routed path, no earlier than `earliest`:
    ///
    /// * one communication slot is claimed at each end node and stays busy
    ///   until [`Timeline::release_comm`];
    /// * every hop generates one EPR pair on its link, serializing on the
    ///   link's capacity channels (contending claims on the same link wait
    ///   for a channel) and occupying one slot at each hop endpoint;
    /// * relay nodes (multi-hop routes only) hold two slots — one per
    ///   adjacent hop — until the entanglement swaps complete at
    ///   `epr_ready`, which trails the slowest hop by one
    ///   [`LatencyModel::entanglement_swap`] per relay.
    ///
    /// Consumes one EPR pair *per hop* (so sparse topologies are charged
    /// their real link traffic).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, either node is out of range, the pair is
    /// disconnected in the topology, or a required node has every
    /// communication slot held open.
    pub fn claim_comm(&mut self, a: NodeId, b: NodeId, earliest: f64) -> CommClaim {
        assert_ne!(a, b, "communication requires two distinct nodes");
        let path = self
            .topology
            .path(a, b)
            .unwrap_or_else(|| panic!("no route between {a} and {b} in the topology"));
        // One slot at each end, claimed for the whole generation-to-release
        // window (the legacy engine's defining constraint).
        let slot_a = self.best_slot(a);
        let slot_b = self.best_slot(b);
        let plan = self.run_hops(&path, earliest, Some((slot_a, slot_b)));
        self.hold_slot(a, slot_a);
        self.hold_slot(b, slot_b);
        CommClaim {
            node_a: a,
            slot_a,
            node_b: b,
            slot_b,
            start: plan.first_start,
            epr_ready: plan.epr_ready,
            hops: plan.hops,
        }
    }

    /// The shared routed-generation engine behind [`Timeline::claim_comm`]
    /// and [`Timeline::generate_routed`]: claims one capacity channel per
    /// hop link (contending generations serialize), two slots per relay
    /// (held until the swap chain completes at `epr_ready`), counts
    /// per-hop EPR pairs / swaps / link traffic, and records the hop and
    /// swap events.
    ///
    /// `ends` carries the already-chosen end-node slots of the legacy
    /// claim path — their availability then constrains the first/last hop
    /// and they appear in the recorded events; `None` (the buffered path)
    /// generates without touching end slots, so only link capacity and
    /// relay availability bound the start.
    fn run_hops(
        &mut self,
        path: &[NodeId],
        earliest: f64,
        ends: Option<(usize, usize)>,
    ) -> HopPlan {
        let hops = path.len() - 1;
        // Slot assignment along the path: two slots at each relay (left
        // half toward the previous node, right half toward the next);
        // `usize::MAX` marks an unconstrained end.
        let mut out_slot = vec![usize::MAX; path.len()]; // toward path[i+1]
        let mut in_slot = vec![usize::MAX; path.len()]; // toward path[i-1]
        if let Some((slot_a, slot_b)) = ends {
            out_slot[0] = slot_a;
            in_slot[hops] = slot_b;
        }
        for i in 1..hops {
            // In indexed mode this pops both entries; the relay-release
            // loop below pushes them back at `epr_ready`.
            let (first, second) = self.two_best_slots(path[i]);
            in_slot[i] = first;
            out_slot[i] = second;
        }

        // Each hop's generation starts as soon as its slots and a link
        // channel are free; the end-to-end pair is ready one swap per relay
        // after the slowest hop.
        let mut first_start = f64::INFINITY;
        let mut all_ready: f64 = 0.0;
        let mut hop_spans = Vec::with_capacity(hops);
        for i in 0..hops {
            let (u, v) = (path[i], path[i + 1]);
            let link_idx =
                self.topology.link_between(u, v).expect("routed path steps along existing links");
            let su = if out_slot[i] == usize::MAX {
                0.0
            } else {
                self.slot_free[u.index()][out_slot[i]]
            };
            let sv = if in_slot[i + 1] == usize::MAX {
                0.0
            } else {
                self.slot_free[v.index()][in_slot[i + 1]]
            };
            let channel = self.best_channel(link_idx);
            let channel_free = channel.map(|c| self.link_free[link_idx][c]).unwrap_or(0.0);
            let start = su.max(sv).max(channel_free).max(earliest);
            let gen = self.latency.t_epr * self.topology.links()[link_idx].latency_factor;
            let ready = start + gen;
            if let Some(c) = channel {
                self.link_free[link_idx][c] = ready;
                if self.indexed {
                    // `best_channel` popped the entry; reinsert at its new
                    // free time.
                    self.link_queue[link_idx].push(Reverse((TimeKey(ready), c)));
                }
            }
            self.link_traffic[link_idx] += 1;
            first_start = first_start.min(start);
            all_ready = all_ready.max(ready);
            let mut slots = Vec::with_capacity(2);
            if out_slot[i] != usize::MAX {
                slots.push((u, out_slot[i]));
            }
            if in_slot[i + 1] != usize::MAX {
                slots.push((v, in_slot[i + 1]));
            }
            hop_spans.push((start, ready, slots));
        }
        let epr_ready = all_ready + (hops - 1) as f64 * self.latency.entanglement_swap();

        // Relay slots free once their halves are measured out by the swaps.
        let mut relay_slots = Vec::with_capacity(2 * hops.saturating_sub(1));
        for i in 1..hops {
            self.slot_free[path[i].index()][in_slot[i]] = epr_ready;
            self.slot_free[path[i].index()][out_slot[i]] = epr_ready;
            if self.indexed {
                let q = &mut self.slot_queue[path[i].index()];
                q.push(Reverse((TimeKey(epr_ready), in_slot[i])));
                q.push(Reverse((TimeKey(epr_ready), out_slot[i])));
            }
            relay_slots.push((path[i], in_slot[i]));
            relay_slots.push((path[i], out_slot[i]));
        }

        self.epr_count += hops;
        self.swap_count += hops - 1;
        self.makespan = self.makespan.max(epr_ready);
        for (start, ready, slots) in hop_spans {
            self.record("epr".to_owned(), start, ready, vec![], slots);
        }
        if hops > 1 {
            self.record("swap".to_owned(), all_ready, epr_ready, vec![], relay_slots);
        }
        HopPlan { first_start, epr_ready, hops }
    }

    /// Generates end-to-end entanglement between `a` and `b` along the
    /// routed path **without claiming the end-node communication slots** —
    /// the buffered-generation half of the event-driven engine. The
    /// generation serializes on link capacity channels and (on multi-hop
    /// routes) on relay-node slots exactly like [`Timeline::claim_comm`],
    /// but the heralded pair parks in the link interface until
    /// [`Timeline::attach_pair`] loads it into comm-qubit slots at both
    /// ends, so end-node slots are occupied only from herald to
    /// consumption, not for the whole generation window.
    ///
    /// Charges one EPR pair per hop and one entanglement swap per relay,
    /// identical to the legacy claim path.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Timeline::claim_comm`], minus
    /// the end-slot exhaustion case (end slots are not touched here).
    pub fn generate_routed(&mut self, a: NodeId, b: NodeId, earliest: f64) -> PendingPair {
        assert_ne!(a, b, "communication requires two distinct nodes");
        let path = self
            .topology
            .path(a, b)
            .unwrap_or_else(|| panic!("no route between {a} and {b} in the topology"));
        let plan = self.run_hops(&path, earliest, None);
        PendingPair { a, b, start: plan.first_start, ready: plan.epr_ready, hops: plan.hops }
    }

    /// Whether a generation between `a` and `b` can be issued right now:
    /// the pair is routable and every relay on the path has two
    /// communication slots not currently held open (entanglement swapping
    /// needs both). Prefetch engines use this to stall lookahead instead of
    /// tripping the relay-slot assertion.
    pub fn can_generate(&self, a: NodeId, b: NodeId) -> bool {
        let Some(path) = self.topology.path(a, b) else {
            return false;
        };
        if self.indexed {
            path[1..path.len() - 1].iter().all(|relay| self.free_slots[relay.index()] >= 2)
        } else {
            path[1..path.len() - 1].iter().all(|relay| {
                self.slot_free[relay.index()].iter().filter(|t| t.is_finite()).count() >= 2
            })
        }
    }

    /// Loads a heralded [`PendingPair`] into one communication slot at each
    /// end node, claiming both until release. The returned claim's
    /// `epr_ready` is the *availability* time — the pair's herald time or
    /// the moment both end slots free up, whichever is later — so the
    /// standard [`Timeline::release_comm`] family applies unchanged.
    ///
    /// The end-slot occupancy interval `[available, release]` enters the
    /// event log through the `"comm"` event the `release_comm` family
    /// records (the returned claim's `epr_ready` *is* the attach time), so
    /// buffered schedules stay checkable by [`crate::validate_events`].
    ///
    /// # Panics
    ///
    /// Panics if an end node has every communication slot held open.
    pub fn attach_pair(&mut self, pair: &PendingPair) -> CommClaim {
        let slot_a = self.best_slot(pair.a);
        let slot_b = self.best_slot(pair.b);
        let available = pair
            .ready
            .max(self.slot_free[pair.a.index()][slot_a])
            .max(self.slot_free[pair.b.index()][slot_b]);
        self.hold_slot(pair.a, slot_a);
        self.hold_slot(pair.b, slot_b);
        self.makespan = self.makespan.max(available);
        CommClaim {
            node_a: pair.a,
            slot_a,
            node_b: pair.b,
            slot_b,
            start: pair.start,
            epr_ready: available,
            hops: pair.hops,
        }
    }

    /// Raises qubit `q`'s next-free time to at least `until` without
    /// recording an event — used for logical availability constraints (e.g.
    /// a parallel block group's end) that are not physical occupancy of a
    /// distinct interval.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn bump_qubit(&mut self, q: QubitId, until: f64) {
        let slot = &mut self.qubit_free[q.index()];
        *slot = slot.max(until);
        self.makespan = self.makespan.max(until);
    }

    /// Releases the two slots of `claim` at different times — TP-Comm holds
    /// the destination-side communication qubit (which stores the teleported
    /// state) longer than the source side.
    ///
    /// # Panics
    ///
    /// Panics if either time precedes the EPR-ready time.
    pub fn release_comm_sides(&mut self, claim: &CommClaim, at_a: f64, at_b: f64) {
        self.release_comm_source(claim, at_a);
        self.release_comm_dest(claim, at_b);
    }

    /// Releases only the source (`node_a`) slot of `claim` at `at`; the
    /// destination slot stays held (e.g. it stores a teleported state).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm_source(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        debug_assert!(
            self.slot_free[claim.node_a.index()][claim.slot_a].is_infinite(),
            "double release of comm slot {}#{} (source side already released)",
            claim.node_a,
            claim.slot_a
        );
        self.release_slot(claim.node_a, claim.slot_a, at);
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_a, claim.slot_a)],
            );
        }
    }

    /// Releases only the destination (`node_b`) slot of `claim` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm_dest(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        debug_assert!(
            self.slot_free[claim.node_b.index()][claim.slot_b].is_infinite(),
            "double release of comm slot {}#{} (destination side already released)",
            claim.node_b,
            claim.slot_b
        );
        self.release_slot(claim.node_b, claim.slot_b, at);
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_b, claim.slot_b)],
            );
        }
    }

    /// Releases both slots of `claim` at time `at`, recording the occupancy
    /// interval past EPR readiness.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        debug_assert!(
            self.slot_free[claim.node_a.index()][claim.slot_a].is_infinite()
                && self.slot_free[claim.node_b.index()][claim.slot_b].is_infinite(),
            "double release of comm claim {}#{} / {}#{}",
            claim.node_a,
            claim.slot_a,
            claim.node_b,
            claim.slot_b
        );
        self.release_slot(claim.node_a, claim.slot_a, at);
        self.release_slot(claim.node_b, claim.slot_b, at);
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_a, claim.slot_a), (claim.node_b, claim.slot_b)],
            );
        }
    }

    /// Total EPR pairs claimed so far (one per hop of every claim).
    pub fn epr_pairs_consumed(&self) -> usize {
        self.epr_count
    }

    /// Total entanglement swaps performed at relay nodes so far.
    pub fn swaps_performed(&self) -> usize {
        self.swap_count
    }

    /// EPR pairs generated per link, for links with any traffic, as
    /// `(endpoint, endpoint, pairs)` in link order. Borrowed iterator —
    /// callers that want the materialized table collect once (per-summary
    /// callers used to pay a fresh `Vec` on every call).
    pub fn link_traffic(&self) -> impl Iterator<Item = (NodeId, NodeId, usize)> + '_ {
        self.topology
            .links()
            .iter()
            .zip(&self.link_traffic)
            .filter(|(_, &t)| t > 0)
            .map(|(l, &t)| (l.a, l.b, t))
    }

    /// Latest event end seen so far (the program latency once scheduling is
    /// complete).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The recorded events, if recording was enabled.
    pub fn events(&self) -> Option<&[TimelineEvent]> {
        self.events.as_deref()
    }

    fn best_slot(&self, node: NodeId) -> usize {
        if self.indexed {
            let Some(&Reverse((_, best))) = self.slot_queue[node.index()].peek() else {
                panic!("all communication slots of {node} are held open; release one first");
            };
            return best;
        }
        let slots = &self.slot_free[node.index()];
        let mut best = 0;
        for (i, t) in slots.iter().enumerate() {
            if *t < slots[best] {
                best = i;
            }
        }
        assert!(
            slots[best].is_finite(),
            "all communication slots of {node} are held open; release one first"
        );
        best
    }

    /// Marks `slot` of `node` held open (a live claim) and maintains the
    /// earliest-free index. Callers hold only a slot just returned by
    /// [`Timeline::best_slot`] with no intervening writes on `node`, so in
    /// indexed mode the slot's entry is the top of the node's queue.
    fn hold_slot(&mut self, node: NodeId, slot: usize) {
        self.slot_free[node.index()][slot] = f64::INFINITY;
        if self.indexed {
            let top = self.slot_queue[node.index()].pop();
            debug_assert!(
                matches!(top, Some(Reverse((_, s))) if s == slot),
                "held slot {node}#{slot} was not the earliest-free entry"
            );
            self.free_slots[node.index()] -= 1;
        }
    }

    /// Frees `slot` of `node` at `at` and maintains the earliest-free
    /// index (the release half of [`Timeline::hold_slot`]).
    fn release_slot(&mut self, node: NodeId, slot: usize, at: f64) {
        self.slot_free[node.index()][slot] = at;
        if self.indexed {
            self.slot_queue[node.index()].push(Reverse((TimeKey(at), slot)));
            self.free_slots[node.index()] += 1;
        }
    }

    /// The two earliest-free slots of a relay node. In indexed mode both
    /// entries are popped — [`Timeline::run_hops`] pushes them back at the
    /// swap-chain completion time.
    fn two_best_slots(&mut self, node: NodeId) -> (usize, usize) {
        if self.indexed {
            let q = &mut self.slot_queue[node.index()];
            let (Some(Reverse((_, first))), Some(Reverse((_, second)))) = (q.pop(), q.pop()) else {
                panic!("relay {node} needs two free communication slots for entanglement swapping");
            };
            return (first, second);
        }
        let slots = &self.slot_free[node.index()];
        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by(|&i, &j| slots[i].total_cmp(&slots[j]).then(i.cmp(&j)));
        assert!(
            order.len() >= 2 && slots[order[1]].is_finite(),
            "relay {node} needs two free communication slots for entanglement swapping"
        );
        (order[0], order[1])
    }

    /// Earliest-free capacity channel of a link (`None` = unbounded link,
    /// nothing to serialize on). In indexed mode the entry is popped —
    /// [`Timeline::run_hops`] pushes it back at the generation's end.
    fn best_channel(&mut self, link_idx: usize) -> Option<usize> {
        let channels = &self.link_free[link_idx];
        if channels.is_empty() {
            return None;
        }
        if self.indexed {
            let Some(Reverse((_, best))) = self.link_queue[link_idx].pop() else {
                unreachable!("every popped channel entry is pushed back after its claim")
            };
            return Some(best);
        }
        let mut best = 0;
        for (i, t) in channels.iter().enumerate() {
            if *t < channels[best] {
                best = i;
            }
        }
        Some(best)
    }

    fn record(
        &mut self,
        label: String,
        start: f64,
        end: f64,
        qubits: Vec<QubitId>,
        slots: Vec<(NodeId, usize)>,
    ) {
        if let Some(events) = &mut self.events {
            events.push(TimelineEvent { label, start, end, qubits, slots });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkTopology;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn timeline() -> Timeline {
        Timeline::new(6, &HardwareSpec::symmetric(3))
    }

    fn linear_hw(nodes: usize) -> HardwareSpec {
        HardwareSpec::symmetric(nodes)
            .with_topology(NetworkTopology::linear(nodes).unwrap())
            .unwrap()
    }

    #[test]
    fn gates_chain_on_shared_qubits() {
        let mut tl = timeline();
        let (s1, e1) = tl.schedule_gate(&Gate::cx(q(0), q(1)));
        let (s2, e2) = tl.schedule_gate(&Gate::cx(q(1), q(2)));
        assert_eq!((s1, e1), (0.0, 1.0));
        assert_eq!((s2, e2), (1.0, 2.0));
        // Disjoint gate runs in parallel.
        let (s3, _) = tl.schedule_gate(&Gate::h(q(3)));
        assert_eq!(s3, 0.0);
        assert_eq!(tl.makespan(), 2.0);
    }

    #[test]
    fn claim_uses_both_nodes_slots() {
        let mut tl = timeline();
        let c1 = tl.claim_comm(n(0), n(1), 0.0);
        let c2 = tl.claim_comm(n(0), n(1), 0.0);
        // Two comm qubits per node: both claims start immediately.
        assert_eq!(c1.start, 0.0);
        assert_eq!(c2.start, 0.0);
        // Third concurrent claim on node 0 must wait for a release.
        tl.release_comm(&c1, 15.0);
        let c3 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c3.start, 15.0);
        assert_eq!(tl.epr_pairs_consumed(), 3);
    }

    #[test]
    #[should_panic(expected = "release one first")]
    fn exhausting_slots_panics() {
        let mut tl = timeline();
        let _ = tl.claim_comm(n(0), n(1), 0.0);
        let _ = tl.claim_comm(n(0), n(1), 0.0);
        let _ = tl.claim_comm(n(0), n(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "before its EPR pair exists")]
    fn premature_release_panics() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 5.0);
    }

    #[test]
    fn makespan_tracks_latest_event() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 3.0);
        assert_eq!(c.start, 3.0);
        assert_eq!(c.epr_ready, 15.0);
        tl.release_comm(&c, 30.0);
        assert_eq!(tl.makespan(), 30.0);
    }

    #[test]
    fn occupy_qubits_blocks_later_gates() {
        let mut tl = timeline();
        tl.occupy_qubits("teleport", &[q(0)], 0.0, 7.0);
        let (s, _) = tl.schedule_gate(&Gate::h(q(0)));
        assert_eq!(s, 7.0);
    }

    #[test]
    fn recording_captures_events() {
        let mut tl = Timeline::new(2, &HardwareSpec::symmetric(2)).with_recording();
        tl.schedule_gate(&Gate::h(q(0)));
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 20.0);
        let events = tl.events().unwrap();
        assert!(events.iter().any(|e| e.label == "h"));
        assert!(events.iter().any(|e| e.label == "epr"));
        assert!(events.iter().any(|e| e.label == "comm"));
    }

    #[test]
    fn no_recording_by_default() {
        let tl = timeline();
        assert!(tl.events().is_none());
    }

    #[test]
    fn bump_qubit_delays_without_event() {
        let mut tl = Timeline::new(2, &HardwareSpec::symmetric(2)).with_recording();
        tl.bump_qubit(q(0), 9.0);
        let (s, _) = tl.schedule_gate(&Gate::h(q(0)));
        assert_eq!(s, 9.0);
        // Only the gate event was recorded.
        assert_eq!(tl.events().unwrap().len(), 1);
    }

    #[test]
    fn asymmetric_release_frees_sides_independently() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm_sides(&c, 12.0, 30.0);
        // Node 0's slot is free at 12; node 1 keeps one slot busy until 30.
        let c2 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c2.start, 0.0); // second slot of node 0 was never used
        let c3 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c3.start, 12.0); // waits for the side released at 12
        tl.release_comm(&c2, 40.0);
        tl.release_comm(&c3, 40.0);
        // Node 1's state-holding slot is busy until 30, its other slot is
        // free, but node 2 is busy until 40.
        let c4 = tl.claim_comm(n(1), n(2), 0.0);
        assert_eq!(c4.start, 40.0);
    }

    #[test]
    fn multi_hop_claim_routes_through_relays() {
        let mut tl = Timeline::new(6, &linear_hw(3));
        let lat = *tl.latency();
        let c = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c.hops, 2);
        // Both hop generations run in parallel; one swap merges them.
        assert_eq!(c.start, 0.0);
        assert!((c.epr_ready - (lat.t_epr + lat.entanglement_swap())).abs() < 1e-9);
        // Two link-level pairs, one swap, and per-link attribution.
        assert_eq!(tl.epr_pairs_consumed(), 2);
        assert_eq!(tl.swaps_performed(), 1);
        assert_eq!(tl.link_traffic().collect::<Vec<_>>(), vec![(n(0), n(1), 1), (n(1), n(2), 1)]);
        // The relay's two slots are busy until the swap completes.
        assert_eq!(tl.node_slot_free_at(n(1)), c.epr_ready);
        tl.release_comm(&c, c.epr_ready);
    }

    #[test]
    fn link_contention_serializes_unit_capacity_links() {
        // Both claims need the single 0–1 link (capacity 1): the second EPR
        // generation waits for the first even though slots are free.
        let mut tl = Timeline::new(4, &linear_hw(2));
        let c1 = tl.claim_comm(n(0), n(1), 0.0);
        let c2 = tl.claim_comm(n(0), n(1), 0.0);
        assert_eq!(c1.start, 0.0);
        assert_eq!(c2.start, c1.epr_ready);
        assert_eq!(tl.link_traffic().collect::<Vec<_>>(), vec![(n(0), n(1), 2)]);
    }

    #[test]
    fn all_to_all_links_never_contend() {
        // Same shape as above but on the default topology: both claims
        // start immediately, exactly the historical behavior.
        let mut tl = Timeline::new(4, &HardwareSpec::symmetric(2));
        let c1 = tl.claim_comm(n(0), n(1), 0.0);
        let c2 = tl.claim_comm(n(0), n(1), 0.0);
        assert_eq!(c1.start, 0.0);
        assert_eq!(c2.start, 0.0);
    }

    #[test]
    fn link_latency_factor_scales_generation() {
        let topo = NetworkTopology::from_text("nodes 2\nlink 0 1 latency=2.0\n").unwrap();
        let hw = HardwareSpec::symmetric(2).with_topology(topo).unwrap();
        let mut tl = Timeline::new(2, &hw);
        let c = tl.claim_comm(n(0), n(1), 0.0);
        assert_eq!(c.epr_ready, 24.0);
    }

    #[test]
    fn relay_slots_free_after_swap() {
        // After a 0→2 claim on a 3-node chain completes, the relay can
        // immediately serve its own communication.
        let mut tl = Timeline::new(6, &linear_hw(3));
        let c = tl.claim_comm(n(0), n(2), 0.0);
        tl.release_comm(&c, c.epr_ready);
        let c2 = tl.claim_comm(n(1), n(2), 0.0);
        assert_eq!(c2.start, c.epr_ready);
    }

    #[test]
    fn multi_hop_events_validate() {
        let hw = linear_hw(4);
        let mut tl = Timeline::new(8, &hw).with_recording();
        let c = tl.claim_comm(n(0), n(3), 0.0);
        assert_eq!(c.hops, 3);
        tl.release_comm(&c, c.epr_ready + 5.0);
        let events = tl.events().unwrap();
        assert_eq!(events.iter().filter(|e| e.label == "epr").count(), 3);
        assert_eq!(events.iter().filter(|e| e.label == "swap").count(), 1);
        crate::validate_events(events, &hw).unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_of_a_claim_is_caught_in_debug() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 15.0);
        tl.release_comm(&c, 16.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_of_one_side_is_caught_in_debug() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm_source(&c, 15.0);
        tl.release_comm_source(&c, 16.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double release")]
    fn release_sides_after_full_release_is_caught_in_debug() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm_sides(&c, 15.0, 20.0);
        tl.release_comm_dest(&c, 25.0);
    }

    #[test]
    fn asymmetric_release_of_distinct_sides_is_fine() {
        // The guard must not fire on the legitimate TP pattern: source
        // first, destination later, each exactly once.
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm_source(&c, 15.0);
        tl.release_comm_dest(&c, 25.0);
        assert_eq!(tl.makespan(), 25.0);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_claim_panics() {
        use crate::topology::Link;
        // HardwareSpec::with_topology rejects disconnected machines, so
        // drive the timeline guard directly through the private fields.
        let mut tl = Timeline::new(6, &HardwareSpec::symmetric(3));
        tl.topology = NetworkTopology::from_links("x", 3, vec![Link::new(n(0), n(1))]).unwrap();
        tl.link_free = vec![vec![0.0]];
        tl.link_queue = tl.link_free.iter().map(|c| free_queue(c)).collect();
        tl.link_traffic = vec![0];
        let _ = tl.claim_comm(n(0), n(2), 0.0);
    }
}
