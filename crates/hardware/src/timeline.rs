//! Resource-constrained event timeline.

use dqc_circuit::{Gate, NodeId, QubitId};

use crate::{HardwareSpec, LatencyModel};

/// A claim on one communication-qubit slot at each of two nodes, produced by
/// [`Timeline::claim_comm`]. The claim covers EPR-pair preparation and stays
/// open (both slots busy) until [`Timeline::release_comm`].
#[derive(Clone, Debug, PartialEq)]
pub struct CommClaim {
    /// First endpoint node.
    pub node_a: NodeId,
    /// Slot index used at `node_a`.
    pub slot_a: usize,
    /// Second endpoint node.
    pub node_b: NodeId,
    /// Slot index used at `node_b`.
    pub slot_b: usize,
    /// When EPR preparation starts.
    pub start: f64,
    /// When the EPR pair is ready (`start + t_epr`).
    pub epr_ready: f64,
}

/// One recorded interval on the timeline (for validation and inspection).
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// Human-readable label (e.g. `"epr"`, `"cat-entangle"`, `"cx"`).
    pub label: String,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// Logical qubits kept busy for the whole interval.
    pub qubits: Vec<QubitId>,
    /// Communication slots `(node, slot)` kept busy for the whole interval.
    pub slots: Vec<(NodeId, usize)>,
}

/// Tracks per-qubit availability and per-node communication-qubit slots
/// while a scheduler lays out a distributed program; counts EPR pairs and
/// the overall makespan.
///
/// ```
/// use dqc_circuit::{Gate, NodeId, QubitId};
/// use dqc_hardware::{HardwareSpec, Timeline};
///
/// let hw = HardwareSpec::symmetric(2);
/// let mut tl = Timeline::new(4, &hw);
/// let (s, e) = tl.schedule_gate(&Gate::cx(QubitId::new(0), QubitId::new(1)));
/// assert_eq!((s, e), (0.0, 1.0));
/// let claim = tl.claim_comm(NodeId::new(0), NodeId::new(1), 0.0);
/// assert_eq!(claim.epr_ready, 12.0);
/// tl.release_comm(&claim, 20.0);
/// assert_eq!(tl.epr_pairs_consumed(), 1);
/// assert_eq!(tl.makespan(), 20.0);
/// ```
#[derive(Clone, Debug)]
pub struct Timeline {
    latency: LatencyModel,
    qubit_free: Vec<f64>,
    slot_free: Vec<Vec<f64>>,
    epr_count: usize,
    makespan: f64,
    events: Option<Vec<TimelineEvent>>,
}

impl Timeline {
    /// A fresh timeline for `num_qubits` logical qubits on machine `hw`.
    pub fn new(num_qubits: usize, hw: &HardwareSpec) -> Self {
        Timeline {
            latency: *hw.latency(),
            qubit_free: vec![0.0; num_qubits],
            slot_free: vec![vec![0.0; hw.comm_qubits_per_node()]; hw.num_nodes()],
            epr_count: 0,
            makespan: 0.0,
            events: None,
        }
    }

    /// Enables event recording (needed by [`crate::validate_events`]).
    pub fn with_recording(mut self) -> Self {
        self.events = Some(Vec::new());
        self
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Earliest time qubit `q` is free.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit_free_at(&self, q: QubitId) -> f64 {
        self.qubit_free[q.index()]
    }

    /// Earliest time at which `node` has a free communication slot.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_slot_free_at(&self, node: NodeId) -> f64 {
        self.slot_free[node.index()].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Schedules a gate as soon as its operands are free; returns
    /// `(start, end)`.
    pub fn schedule_gate(&mut self, gate: &Gate) -> (f64, f64) {
        self.schedule_gate_after(gate, 0.0)
    }

    /// Schedules a gate no earlier than `earliest`; returns `(start, end)`.
    pub fn schedule_gate_after(&mut self, gate: &Gate, earliest: f64) -> (f64, f64) {
        let start =
            gate.qubits().iter().map(|q| self.qubit_free[q.index()]).fold(earliest, f64::max);
        let end = start + self.latency.gate(gate);
        for q in gate.qubits() {
            self.qubit_free[q.index()] = end;
        }
        self.makespan = self.makespan.max(end);
        self.record(gate.kind().name().to_owned(), start, end, gate.qubits().to_vec(), vec![]);
        (start, end)
    }

    /// Marks `qubits` busy over `[start, end)` with a labelled event
    /// (protocol phases that are not plain gates).
    pub fn occupy_qubits(&mut self, label: &str, qubits: &[QubitId], start: f64, end: f64) {
        for q in qubits {
            self.qubit_free[q.index()] = self.qubit_free[q.index()].max(end);
        }
        self.makespan = self.makespan.max(end);
        self.record(label.to_owned(), start, end, qubits.to_vec(), vec![]);
    }

    /// Claims one communication slot at each endpoint and starts EPR
    /// preparation at the earliest instant both slots are free (but not
    /// before `earliest`). Consumes one EPR pair. The slots remain busy
    /// until [`Timeline::release_comm`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    pub fn claim_comm(&mut self, a: NodeId, b: NodeId, earliest: f64) -> CommClaim {
        assert_ne!(a, b, "communication requires two distinct nodes");
        let slot_a = self.best_slot(a);
        let slot_b = self.best_slot(b);
        let start =
            self.slot_free[a.index()][slot_a].max(self.slot_free[b.index()][slot_b]).max(earliest);
        let epr_ready = start + self.latency.t_epr;
        self.slot_free[a.index()][slot_a] = f64::INFINITY;
        self.slot_free[b.index()][slot_b] = f64::INFINITY;
        self.epr_count += 1;
        self.makespan = self.makespan.max(epr_ready);
        self.record("epr".to_owned(), start, epr_ready, vec![], vec![(a, slot_a), (b, slot_b)]);
        CommClaim { node_a: a, slot_a, node_b: b, slot_b, start, epr_ready }
    }

    /// Raises qubit `q`'s next-free time to at least `until` without
    /// recording an event — used for logical availability constraints (e.g.
    /// a parallel block group's end) that are not physical occupancy of a
    /// distinct interval.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn bump_qubit(&mut self, q: QubitId, until: f64) {
        let slot = &mut self.qubit_free[q.index()];
        *slot = slot.max(until);
        self.makespan = self.makespan.max(until);
    }

    /// Releases the two slots of `claim` at different times — TP-Comm holds
    /// the destination-side communication qubit (which stores the teleported
    /// state) longer than the source side.
    ///
    /// # Panics
    ///
    /// Panics if either time precedes the EPR-ready time.
    pub fn release_comm_sides(&mut self, claim: &CommClaim, at_a: f64, at_b: f64) {
        self.release_comm_source(claim, at_a);
        self.release_comm_dest(claim, at_b);
    }

    /// Releases only the source (`node_a`) slot of `claim` at `at`; the
    /// destination slot stays held (e.g. it stores a teleported state).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm_source(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        self.slot_free[claim.node_a.index()][claim.slot_a] = at;
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_a, claim.slot_a)],
            );
        }
    }

    /// Releases only the destination (`node_b`) slot of `claim` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm_dest(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        self.slot_free[claim.node_b.index()][claim.slot_b] = at;
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_b, claim.slot_b)],
            );
        }
    }

    /// Releases both slots of `claim` at time `at`, recording the occupancy
    /// interval past EPR readiness.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the EPR-ready time.
    pub fn release_comm(&mut self, claim: &CommClaim, at: f64) {
        assert!(
            at >= claim.epr_ready - 1e-9,
            "cannot release a communication before its EPR pair exists"
        );
        self.slot_free[claim.node_a.index()][claim.slot_a] = at;
        self.slot_free[claim.node_b.index()][claim.slot_b] = at;
        self.makespan = self.makespan.max(at);
        if at > claim.epr_ready {
            self.record(
                "comm".to_owned(),
                claim.epr_ready,
                at,
                vec![],
                vec![(claim.node_a, claim.slot_a), (claim.node_b, claim.slot_b)],
            );
        }
    }

    /// Total EPR pairs claimed so far.
    pub fn epr_pairs_consumed(&self) -> usize {
        self.epr_count
    }

    /// Latest event end seen so far (the program latency once scheduling is
    /// complete).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The recorded events, if recording was enabled.
    pub fn events(&self) -> Option<&[TimelineEvent]> {
        self.events.as_deref()
    }

    fn best_slot(&self, node: NodeId) -> usize {
        let slots = &self.slot_free[node.index()];
        let mut best = 0;
        for (i, t) in slots.iter().enumerate() {
            if *t < slots[best] {
                best = i;
            }
        }
        assert!(
            slots[best].is_finite(),
            "all communication slots of {node} are held open; release one first"
        );
        best
    }

    fn record(
        &mut self,
        label: String,
        start: f64,
        end: f64,
        qubits: Vec<QubitId>,
        slots: Vec<(NodeId, usize)>,
    ) {
        if let Some(events) = &mut self.events {
            events.push(TimelineEvent { label, start, end, qubits, slots });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn timeline() -> Timeline {
        Timeline::new(6, &HardwareSpec::symmetric(3))
    }

    #[test]
    fn gates_chain_on_shared_qubits() {
        let mut tl = timeline();
        let (s1, e1) = tl.schedule_gate(&Gate::cx(q(0), q(1)));
        let (s2, e2) = tl.schedule_gate(&Gate::cx(q(1), q(2)));
        assert_eq!((s1, e1), (0.0, 1.0));
        assert_eq!((s2, e2), (1.0, 2.0));
        // Disjoint gate runs in parallel.
        let (s3, _) = tl.schedule_gate(&Gate::h(q(3)));
        assert_eq!(s3, 0.0);
        assert_eq!(tl.makespan(), 2.0);
    }

    #[test]
    fn claim_uses_both_nodes_slots() {
        let mut tl = timeline();
        let c1 = tl.claim_comm(n(0), n(1), 0.0);
        let c2 = tl.claim_comm(n(0), n(1), 0.0);
        // Two comm qubits per node: both claims start immediately.
        assert_eq!(c1.start, 0.0);
        assert_eq!(c2.start, 0.0);
        // Third concurrent claim on node 0 must wait for a release.
        tl.release_comm(&c1, 15.0);
        let c3 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c3.start, 15.0);
        assert_eq!(tl.epr_pairs_consumed(), 3);
    }

    #[test]
    #[should_panic(expected = "release one first")]
    fn exhausting_slots_panics() {
        let mut tl = timeline();
        let _ = tl.claim_comm(n(0), n(1), 0.0);
        let _ = tl.claim_comm(n(0), n(1), 0.0);
        let _ = tl.claim_comm(n(0), n(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "before its EPR pair exists")]
    fn premature_release_panics() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 5.0);
    }

    #[test]
    fn makespan_tracks_latest_event() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 3.0);
        assert_eq!(c.start, 3.0);
        assert_eq!(c.epr_ready, 15.0);
        tl.release_comm(&c, 30.0);
        assert_eq!(tl.makespan(), 30.0);
    }

    #[test]
    fn occupy_qubits_blocks_later_gates() {
        let mut tl = timeline();
        tl.occupy_qubits("teleport", &[q(0)], 0.0, 7.0);
        let (s, _) = tl.schedule_gate(&Gate::h(q(0)));
        assert_eq!(s, 7.0);
    }

    #[test]
    fn recording_captures_events() {
        let mut tl = Timeline::new(2, &HardwareSpec::symmetric(2)).with_recording();
        tl.schedule_gate(&Gate::h(q(0)));
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 20.0);
        let events = tl.events().unwrap();
        assert!(events.iter().any(|e| e.label == "h"));
        assert!(events.iter().any(|e| e.label == "epr"));
        assert!(events.iter().any(|e| e.label == "comm"));
    }

    #[test]
    fn no_recording_by_default() {
        let tl = timeline();
        assert!(tl.events().is_none());
    }

    #[test]
    fn bump_qubit_delays_without_event() {
        let mut tl = Timeline::new(2, &HardwareSpec::symmetric(2)).with_recording();
        tl.bump_qubit(q(0), 9.0);
        let (s, _) = tl.schedule_gate(&Gate::h(q(0)));
        assert_eq!(s, 9.0);
        // Only the gate event was recorded.
        assert_eq!(tl.events().unwrap().len(), 1);
    }

    #[test]
    fn asymmetric_release_frees_sides_independently() {
        let mut tl = timeline();
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm_sides(&c, 12.0, 30.0);
        // Node 0's slot is free at 12; node 1 keeps one slot busy until 30.
        let c2 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c2.start, 0.0); // second slot of node 0 was never used
        let c3 = tl.claim_comm(n(0), n(2), 0.0);
        assert_eq!(c3.start, 12.0); // waits for the side released at 12
        tl.release_comm(&c2, 40.0);
        tl.release_comm(&c3, 40.0);
        // Node 1's state-holding slot is busy until 30, its other slot is
        // free, but node 2 is busy until 40.
        let c4 = tl.claim_comm(n(1), n(2), 0.0);
        assert_eq!(c4.start, 40.0);
    }
}
