//! The normalized latency model of paper Table 1.

use dqc_circuit::{Gate, GateKind};

/// Operation latencies, normalized to CX units (paper Table 1).
///
/// Derived quantities ([`LatencyModel::teleport`],
/// [`LatencyModel::cat_entangle`], [`LatencyModel::cat_disentangle`]) are
/// computed from the primitive constants following the circuit structure of
/// paper Figure 2; with the default constants a teleportation costs ≈ 7.3 CX,
/// matching the paper's “about 8 CX” remark.
///
/// ```
/// use dqc_hardware::LatencyModel;
/// let m = LatencyModel::default();
/// assert_eq!(m.t_epr, 12.0);
/// assert!(m.teleport() > 7.0 && m.teleport() < 8.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Single-qubit gate latency (`t1q`, default 0.1).
    pub t_1q: f64,
    /// Two-qubit gate latency (`t2q`, default 1).
    pub t_2q: f64,
    /// Measurement latency (`tms`, default 5).
    pub t_measure: f64,
    /// Remote EPR-pair preparation latency (`tep`, default 12).
    pub t_epr: f64,
    /// One-bit classical communication latency (`tcb`, default 1).
    pub t_classical: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { t_1q: 0.1, t_2q: 1.0, t_measure: 5.0, t_epr: 12.0, t_classical: 1.0 }
    }
}

impl LatencyModel {
    /// Latency of a single (local) gate instance.
    ///
    /// Barriers are free; reset is modeled as a measurement plus a
    /// conditional X.
    pub fn gate(&self, gate: &Gate) -> f64 {
        match gate.kind() {
            GateKind::Barrier => 0.0,
            GateKind::Measure => self.t_measure,
            GateKind::Reset => self.t_measure + self.t_1q,
            _ => match gate.num_qubits() {
                1 => self.t_1q,
                2 => self.t_2q,
                // Multi-qubit gates are unrolled before scheduling; if one
                // slips through, approximate with its CX-cost lower bound.
                n => self.t_2q * (2 * n) as f64,
            },
        }
    }

    /// One qubit teleportation (paper Fig. 2b, excluding EPR preparation):
    /// CX + H + measurement + classical transfer + the two conditioned
    /// corrections.
    pub fn teleport(&self) -> f64 {
        self.t_2q + self.t_1q + self.t_measure + self.t_classical + 2.0 * self.t_1q
    }

    /// Cat-entangler phase (paper Fig. 2a, left half, excluding EPR
    /// preparation): local CX onto the comm qubit, measurement, one
    /// classical bit, conditioned X on the remote comm qubit.
    pub fn cat_entangle(&self) -> f64 {
        self.t_2q + self.t_measure + self.t_classical + self.t_1q
    }

    /// Cat-disentangler phase (paper Fig. 2a, right half): H on the remote
    /// comm qubit, measurement, one classical bit, conditioned Z on the
    /// original qubit.
    pub fn cat_disentangle(&self) -> f64 {
        self.t_1q + self.t_measure + self.t_classical + self.t_1q
    }

    /// One entanglement swap at a relay node of a multi-hop route: a Bell
    /// measurement on the relay's two link halves (CX + H + measurement),
    /// one classical bit to an end node, and the two conditioned Pauli
    /// corrections there. Structurally identical to the teleport
    /// measurement phase.
    pub fn entanglement_swap(&self) -> f64 {
        self.t_2q + self.t_1q + self.t_measure + self.t_classical + 2.0 * self.t_1q
    }

    /// Latency of executing a sequence of gates serially (helper for block
    /// bodies; the schedulers use dependency-aware paths where it matters).
    pub fn serial(&self, gates: &[Gate]) -> f64 {
        gates.iter().map(|g| self.gate(g)).sum()
    }

    /// Latency of a full stand-alone remote CX via Cat-Comm, including EPR
    /// preparation — the unit cost of the sparse baseline.
    pub fn sparse_remote_cx(&self) -> f64 {
        self.t_epr + self.cat_entangle() + self.t_2q + self.cat_disentangle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::QubitId;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn default_matches_table_1() {
        let m = LatencyModel::default();
        assert_eq!(m.t_1q, 0.1);
        assert_eq!(m.t_2q, 1.0);
        assert_eq!(m.t_measure, 5.0);
        assert_eq!(m.t_epr, 12.0);
        assert_eq!(m.t_classical, 1.0);
    }

    #[test]
    fn gate_latencies() {
        let m = LatencyModel::default();
        assert_eq!(m.gate(&Gate::h(q(0))), 0.1);
        assert_eq!(m.gate(&Gate::cx(q(0), q(1))), 1.0);
        assert_eq!(m.gate(&Gate::crz(0.4, q(0), q(1))), 1.0);
        assert_eq!(m.gate(&Gate::measure(q(0), dqc_circuit::CBitId::new(0))), 5.0);
        assert_eq!(m.gate(&Gate::barrier(&[q(0)])), 0.0);
    }

    #[test]
    fn teleport_close_to_paper_estimate() {
        let m = LatencyModel::default();
        let t = m.teleport();
        assert!((7.0..8.5).contains(&t), "teleport latency {t}");
    }

    #[test]
    fn protocol_phases_are_positive_and_ordered() {
        let m = LatencyModel::default();
        assert!(m.cat_entangle() > 0.0);
        assert!(m.cat_disentangle() > 0.0);
        // EPR preparation dominates every other protocol phase (paper §4.4).
        assert!(m.t_epr > m.teleport());
        assert!(m.t_epr > m.cat_entangle());
        assert!(m.t_epr > m.entanglement_swap());
    }

    #[test]
    fn serial_sums_gate_latencies() {
        let m = LatencyModel::default();
        let gates = vec![Gate::h(q(0)), Gate::cx(q(0), q(1)), Gate::h(q(0))];
        assert!((m.serial(&gates) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn sparse_remote_cx_cost() {
        let m = LatencyModel::default();
        // 12 + 7.1 + 1 + 6.2 = 26.3 with default constants.
        assert!((m.sparse_remote_cx() - 26.3).abs() < 1e-9);
    }
}
