//! Static description of the distributed machine.

use dqc_circuit::{NodeId, Partition};

use crate::{HardwareError, LatencyModel, NetworkTopology};

/// Node count, per-node communication-qubit budget, latency model, and
/// interconnect topology.
///
/// The paper assumes all-to-all EPR connectivity between nodes and exactly
/// two communication qubits per node for near-term DQC (§3); both are
/// configurable here ([`HardwareSpec::with_comm_qubits`],
/// [`HardwareSpec::with_topology`]), and the sensitivity benches exercise
/// other values. Sparse topologies route non-adjacent communication through
/// entanglement swapping (see [`NetworkTopology`]).
///
/// ```
/// use dqc_hardware::{HardwareSpec, NetworkTopology};
/// let hw = HardwareSpec::symmetric(10);
/// assert_eq!(hw.num_nodes(), 10);
/// assert_eq!(hw.comm_qubits_per_node(), 2);
/// assert_eq!(hw.topology().name(), "all-to-all");
/// let sparse = hw.with_topology(NetworkTopology::linear(10)?)?;
/// assert_eq!(sparse.topology().diameter(), Some(9));
/// # Ok::<(), dqc_hardware::HardwareError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareSpec {
    num_nodes: usize,
    comm_qubits_per_node: usize,
    latency: LatencyModel,
    topology: NetworkTopology,
}

impl HardwareSpec {
    /// A machine with `num_nodes` nodes, the paper's two communication
    /// qubits per node, Table-1 latencies, and all-to-all connectivity.
    pub fn symmetric(num_nodes: usize) -> Self {
        HardwareSpec {
            num_nodes,
            comm_qubits_per_node: 2,
            latency: LatencyModel::default(),
            topology: NetworkTopology::all_to_all(num_nodes),
        }
    }

    /// A machine matching `partition`'s node count.
    pub fn for_partition(partition: &Partition) -> Self {
        HardwareSpec::symmetric(partition.num_nodes())
    }

    /// Overrides the per-node communication-qubit budget.
    ///
    /// # Errors
    ///
    /// [`HardwareError::ZeroCommQubits`] when `n` is zero — a node without
    /// communication qubits cannot participate in DQC — and
    /// [`HardwareError::InsufficientRelayQubits`] when `n == 1` but the
    /// topology needs multi-hop relays (entanglement swapping holds one
    /// comm qubit per adjacent hop on every relay node).
    pub fn with_comm_qubits(mut self, n: usize) -> Result<Self, HardwareError> {
        if n == 0 {
            return Err(HardwareError::ZeroCommQubits);
        }
        self.comm_qubits_per_node = n;
        self.validate()?;
        Ok(self)
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the interconnect topology.
    ///
    /// # Errors
    ///
    /// [`HardwareError::TopologyNodeMismatch`] when the topology's node
    /// count disagrees with the machine's;
    /// [`HardwareError::Disconnected`] when some node pair has no route;
    /// [`HardwareError::InsufficientRelayQubits`] when multi-hop routing is
    /// needed but the per-node comm-qubit budget is below two.
    pub fn with_topology(mut self, topology: NetworkTopology) -> Result<Self, HardwareError> {
        if topology.num_nodes() != self.num_nodes {
            return Err(HardwareError::TopologyNodeMismatch {
                spec_nodes: self.num_nodes,
                topology_nodes: topology.num_nodes(),
            });
        }
        self.topology = topology;
        self.validate()?;
        Ok(self)
    }

    /// Cross-field validation shared by the fallible builders.
    fn validate(&self) -> Result<(), HardwareError> {
        for a in 0..self.num_nodes {
            for b in (a + 1)..self.num_nodes {
                if self.topology.hop_distance(NodeId::new(a), NodeId::new(b)).is_none() {
                    return Err(HardwareError::Disconnected { a, b });
                }
            }
        }
        if self.topology.needs_relays() && self.comm_qubits_per_node < 2 {
            return Err(HardwareError::InsufficientRelayQubits {
                comm_qubits: self.comm_qubits_per_node,
            });
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Communication qubits available on each node.
    pub fn comm_qubits_per_node(&self) -> usize {
        self.comm_qubits_per_node
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Whether `node` is a valid node of this machine.
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_defaults() {
        let hw = HardwareSpec::symmetric(4);
        assert_eq!(hw.num_nodes(), 4);
        assert_eq!(hw.comm_qubits_per_node(), 2);
        assert_eq!(hw.latency().t_epr, 12.0);
        assert_eq!(hw.topology().name(), "all-to-all");
        assert!(hw.contains(NodeId::new(3)));
        assert!(!hw.contains(NodeId::new(4)));
    }

    #[test]
    fn builders_override_fields() {
        let hw = HardwareSpec::symmetric(2)
            .with_comm_qubits(4)
            .unwrap()
            .with_latency(LatencyModel { t_epr: 20.0, ..LatencyModel::default() });
        assert_eq!(hw.comm_qubits_per_node(), 4);
        assert_eq!(hw.latency().t_epr, 20.0);
    }

    #[test]
    fn for_partition_matches_node_count() {
        let p = Partition::block(12, 3).unwrap();
        assert_eq!(HardwareSpec::for_partition(&p).num_nodes(), 3);
    }

    #[test]
    fn zero_comm_qubits_rejected() {
        let err = HardwareSpec::symmetric(2).with_comm_qubits(0).unwrap_err();
        assert_eq!(err, HardwareError::ZeroCommQubits);
    }

    #[test]
    fn topology_node_count_must_match() {
        let err = HardwareSpec::symmetric(4)
            .with_topology(NetworkTopology::linear(3).unwrap())
            .unwrap_err();
        assert!(matches!(err, HardwareError::TopologyNodeMismatch { .. }));
    }

    #[test]
    fn disconnected_topologies_are_rejected() {
        use crate::topology::Link;
        let t =
            NetworkTopology::from_links("x", 3, vec![Link::new(NodeId::new(0), NodeId::new(1))])
                .unwrap();
        let err = HardwareSpec::symmetric(3).with_topology(t).unwrap_err();
        assert!(matches!(err, HardwareError::Disconnected { .. }));
    }

    #[test]
    fn relay_topologies_need_two_comm_qubits() {
        let t = NetworkTopology::linear(3).unwrap();
        let err = HardwareSpec::symmetric(3)
            .with_comm_qubits(1)
            .unwrap()
            .with_topology(t.clone())
            .unwrap_err();
        assert!(matches!(err, HardwareError::InsufficientRelayQubits { .. }));
        // Order of builder calls does not matter.
        let err =
            HardwareSpec::symmetric(3).with_topology(t).unwrap().with_comm_qubits(1).unwrap_err();
        assert!(matches!(err, HardwareError::InsufficientRelayQubits { .. }));
        // One comm qubit is fine on diameter-1 machines.
        assert!(HardwareSpec::symmetric(3).with_comm_qubits(1).is_ok());
    }
}
