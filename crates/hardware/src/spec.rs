//! Static description of the distributed machine.

use dqc_circuit::{NodeId, Partition};

use crate::LatencyModel;

/// Node count, per-node communication-qubit budget, and latency model.
///
/// The paper assumes all-to-all EPR connectivity between nodes and exactly
/// two communication qubits per node for near-term DQC (§3); both are
/// configurable here, and the sensitivity benches exercise other values.
///
/// ```
/// use dqc_hardware::HardwareSpec;
/// let hw = HardwareSpec::symmetric(10);
/// assert_eq!(hw.num_nodes(), 10);
/// assert_eq!(hw.comm_qubits_per_node(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareSpec {
    num_nodes: usize,
    comm_qubits_per_node: usize,
    latency: LatencyModel,
}

impl HardwareSpec {
    /// A machine with `num_nodes` nodes, the paper's two communication
    /// qubits per node, and Table-1 latencies.
    pub fn symmetric(num_nodes: usize) -> Self {
        HardwareSpec { num_nodes, comm_qubits_per_node: 2, latency: LatencyModel::default() }
    }

    /// A machine matching `partition`'s node count.
    pub fn for_partition(partition: &Partition) -> Self {
        HardwareSpec::symmetric(partition.num_nodes())
    }

    /// Overrides the per-node communication-qubit budget.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a node without communication qubits cannot
    /// participate in DQC.
    pub fn with_comm_qubits(mut self, n: usize) -> Self {
        assert!(n > 0, "each node needs at least one communication qubit");
        self.comm_qubits_per_node = n;
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Communication qubits available on each node.
    pub fn comm_qubits_per_node(&self) -> usize {
        self.comm_qubits_per_node
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Whether `node` is a valid node of this machine.
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_defaults() {
        let hw = HardwareSpec::symmetric(4);
        assert_eq!(hw.num_nodes(), 4);
        assert_eq!(hw.comm_qubits_per_node(), 2);
        assert_eq!(hw.latency().t_epr, 12.0);
        assert!(hw.contains(NodeId::new(3)));
        assert!(!hw.contains(NodeId::new(4)));
    }

    #[test]
    fn builders_override_fields() {
        let hw = HardwareSpec::symmetric(2)
            .with_comm_qubits(4)
            .with_latency(LatencyModel { t_epr: 20.0, ..LatencyModel::default() });
        assert_eq!(hw.comm_qubits_per_node(), 4);
        assert_eq!(hw.latency().t_epr, 20.0);
    }

    #[test]
    fn for_partition_matches_node_count() {
        let p = Partition::block(12, 3).unwrap();
        assert_eq!(HardwareSpec::for_partition(&p).num_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one communication qubit")]
    fn zero_comm_qubits_rejected() {
        let _ = HardwareSpec::symmetric(2).with_comm_qubits(0);
    }
}
