//! Hardware model of a distributed quantum computer.
//!
//! The AutoComm paper models the machine as `k` modular nodes, each holding
//! `t` data qubits plus **two communication qubits**, connected all-to-all
//! through EPR-pair generation. Latencies are normalized to CX units
//! (paper Table 1):
//!
//! | operation | latency |
//! |---|---|
//! | single-qubit gate | 0.1 |
//! | CX / CZ | 1 |
//! | measurement | 5 |
//! | EPR pair preparation | 12 |
//! | one classical bit | 1 |
//!
//! This crate provides:
//!
//! * [`LatencyModel`] — those constants plus derived protocol phase
//!   latencies (cat-entangle, cat-disentangle, teleport);
//! * [`HardwareSpec`] — node count / qubits-per-node / comm-qubit budget;
//! * [`Timeline`] — a resource-constrained event timeline tracking per-qubit
//!   availability and per-node communication-qubit slots, used by every
//!   scheduler in the reproduction (AutoComm burst-greedy, baseline ASAP,
//!   GP-TP); it also counts consumed EPR pairs;
//! * [`validate_events`] — an independent checker that replays a timeline's
//!   event log and verifies no qubit or comm-slot is double-booked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fidelity;
mod latency;
mod spec;
mod timeline;
mod validate;

pub use fidelity::{FidelityInputs, FidelityModel};
pub use latency::LatencyModel;
pub use spec::HardwareSpec;
pub use timeline::{CommClaim, Timeline, TimelineEvent};
pub use validate::{validate_events, ValidationError};
