//! Hardware model of a distributed quantum computer.
//!
//! The AutoComm paper models the machine as `k` modular nodes, each holding
//! `t` data qubits plus **two communication qubits**, connected all-to-all
//! through EPR-pair generation. Latencies are normalized to CX units
//! (paper Table 1):
//!
//! | operation | latency |
//! |---|---|
//! | single-qubit gate | 0.1 |
//! | CX / CZ | 1 |
//! | measurement | 5 |
//! | EPR pair preparation | 12 |
//! | one classical bit | 1 |
//!
//! This crate provides:
//!
//! * [`LatencyModel`] — those constants plus derived protocol phase
//!   latencies (cat-entangle, cat-disentangle, teleport, entanglement
//!   swap);
//! * [`NetworkTopology`] — an explicit interconnect link graph with
//!   per-link EPR latency/capacity and shortest-path routing tables;
//!   `all_to_all` reproduces the paper's implicit model exactly, while
//!   `linear`/`ring`/`grid`/`star` and a small text file format describe
//!   sparse machines whose non-adjacent pairs communicate through
//!   entanglement swapping;
//! * [`HardwareSpec`] — node count / comm-qubit budget / latency model /
//!   topology, with `Result`-returning validation;
//! * [`Timeline`] — a resource-constrained event timeline tracking
//!   per-qubit availability, per-node communication-qubit slots, and
//!   per-link generation channels, used by every scheduler in the
//!   reproduction (AutoComm burst-greedy, baseline ASAP, GP-TP); it counts
//!   consumed EPR pairs (one per hop), entanglement swaps, and per-link
//!   traffic;
//! * [`EprBuffer`] / [`ResourceManager`] — the event-driven buffering layer
//!   on top of the timeline: per-node FIFO buffers of heralded EPR pairs
//!   (capacity = comm-qubit budget) and a manager that separates
//!   *generation events* (link-channel claims, relay swap chains, buffer
//!   deposits) from *consumption events* (bursts pop matching pairs or
//!   block until one matures), selected by a [`BufferPolicy`];
//! * [`validate_events`] — an independent checker that replays a timeline's
//!   event log and verifies no qubit or comm-slot is double-booked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod error;
mod fidelity;
mod latency;
mod spec;
mod timeline;
pub mod topology;
mod validate;

pub use buffer::{BufferMetrics, BufferPolicy, EprBuffer, ResourceManager};
pub use error::HardwareError;
pub use fidelity::{FidelityInputs, FidelityModel};
pub use latency::LatencyModel;
pub use spec::HardwareSpec;
pub use timeline::{CommClaim, PendingPair, Timeline, TimelineEvent};
pub use topology::{Link, NetworkTopology};
pub use validate::{validate_events, ValidationError};
