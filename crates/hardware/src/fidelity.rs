//! Program fidelity estimation.
//!
//! The paper's motivation for cutting communication is error: remote
//! operations suffer “up to 40× accuracy degradation” and long schedules
//! accumulate decoherence (§1, §3.1). This module provides the standard
//! first-order estimate used in such studies: every operation succeeds
//! independently with probability `1 − ε`, and idling qubits decay
//! exponentially over the schedule makespan, so
//!
//! ```text
//! F ≈ (1-ε_1q)^#1q · (1-ε_2q)^#2q · (1-ε_ms)^#measure
//!     · (1-ε_epr)^#comms · exp(-T · n · γ)
//! ```
//!
//! The absolute value is a model, but *ratios* between compilations of the
//! same program are meaningful: fewer EPR pairs and a shorter makespan
//! translate directly into higher estimated fidelity, which is the paper's
//! argument for AutoComm.

use crate::LatencyModel;

/// Error rates of the distributed machine.
///
/// Defaults reflect the paper's narrative: remote EPR communication is by
/// far the most error-prone resource (≈ 40× a local two-qubit gate, §1).
///
/// ```
/// use dqc_hardware::FidelityModel;
/// let m = FidelityModel::default();
/// assert!(m.e_epr > 10.0 * m.e_2q);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FidelityModel {
    /// Single-qubit gate error rate.
    pub e_1q: f64,
    /// Two-qubit gate error rate.
    pub e_2q: f64,
    /// Measurement error rate.
    pub e_measure: f64,
    /// Error per consumed (purified) remote EPR pair.
    pub e_epr: f64,
    /// Decoherence rate per qubit per CX-unit of schedule time.
    pub gamma: f64,
    /// Decay rate of a *buffered* EPR pair per CX-unit it ages between
    /// herald and consumption (Werner-state depolarization toward the
    /// maximally mixed two-qubit state).
    pub gamma_epr: f64,
}

impl Default for FidelityModel {
    fn default() -> Self {
        FidelityModel {
            e_1q: 1e-4,
            e_2q: 1e-3,
            e_measure: 5e-3,
            e_epr: 4e-2, // ≈ 40× the local two-qubit error (paper §1)
            gamma: 1e-5,
            gamma_epr: 1e-3,
        }
    }
}

/// Operation counts of one compiled program (the inputs to the estimate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FidelityInputs {
    /// Single-qubit gates executed.
    pub num_1q: usize,
    /// Two-qubit gates executed (local and within-block remote bodies).
    pub num_2q: usize,
    /// Measurements (including protocol-internal ones).
    pub num_measure: usize,
    /// Remote EPR pairs consumed.
    pub num_epr: usize,
    /// Logical qubits held coherent across the schedule.
    pub num_qubits: usize,
    /// Schedule makespan in CX units.
    pub makespan: f64,
}

impl FidelityModel {
    /// First-order program fidelity estimate; always in `(0, 1]`.
    pub fn estimate(&self, inputs: &FidelityInputs) -> f64 {
        let gates = (1.0 - self.e_1q).powi(inputs.num_1q as i32)
            * (1.0 - self.e_2q).powi(inputs.num_2q as i32)
            * (1.0 - self.e_measure).powi(inputs.num_measure as i32)
            * (1.0 - self.e_epr).powi(inputs.num_epr as i32);
        let idle = (-inputs.makespan * inputs.num_qubits as f64 * self.gamma).exp();
        (gates * idle).clamp(0.0, 1.0)
    }

    /// Error contribution of communication alone — the quantity AutoComm
    /// minimizes (useful for reporting the communication share of the error
    /// budget).
    pub fn communication_infidelity(&self, num_epr: usize) -> f64 {
        1.0 - (1.0 - self.e_epr).powi(num_epr as i32)
    }

    /// Fidelity of one EPR pair that aged `age` CX-units in a buffer
    /// between herald and consumption: a fresh pair starts at `1 - e_epr`
    /// and depolarizes exponentially toward the maximally mixed two-qubit
    /// state's Bell fidelity of 1/4,
    ///
    /// ```text
    /// F(age) = 1/4 + (1 - e_epr - 1/4) · exp(-gamma_epr · age)
    /// ```
    ///
    /// so a buffered (aged) pair never reports a *higher* fidelity than a
    /// fresh one — the safety property the EPR-buffering scheduler's
    /// staleness bound ([`crate::BufferPolicy::Prefetch`]'s depth) trades
    /// against makespan.
    pub fn epr_pair_fidelity(&self, age: f64) -> f64 {
        let fresh = 1.0 - self.e_epr;
        let floor = 0.25;
        floor + (fresh - floor).max(0.0) * (-self.gamma_epr * age.max(0.0)).exp()
    }

    /// Error contribution of `num_epr` pairs consumed at a mean buffer age
    /// of `mean_age` CX-units (the aged generalization of
    /// [`FidelityModel::communication_infidelity`]; identical at age 0).
    pub fn aged_communication_infidelity(&self, num_epr: usize, mean_age: f64) -> f64 {
        1.0 - self.epr_pair_fidelity(mean_age).powi(num_epr as i32)
    }

    /// Convenience: derives the inputs for a program compiled onto `lat`,
    /// adding the protocol-internal operations of each communication
    /// (cat-entangle/disentangle ≈ 1 CX + 2 measurements per pair).
    pub fn inputs_for(
        num_1q: usize,
        num_2q: usize,
        num_epr: usize,
        num_qubits: usize,
        makespan: f64,
        _lat: &LatencyModel,
    ) -> FidelityInputs {
        FidelityInputs {
            num_1q,
            num_2q: num_2q + num_epr, // one comm-qubit CX per protocol pair
            num_measure: 2 * num_epr,
            num_epr,
            num_qubits,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(num_epr: usize, makespan: f64) -> FidelityInputs {
        FidelityInputs {
            num_1q: 100,
            num_2q: 50,
            num_measure: 0,
            num_epr,
            num_qubits: 10,
            makespan,
        }
    }

    #[test]
    fn fidelity_is_bounded() {
        let m = FidelityModel::default();
        let f = m.estimate(&inputs(10, 100.0));
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn fewer_epr_pairs_means_higher_fidelity() {
        let m = FidelityModel::default();
        let few = m.estimate(&inputs(10, 100.0));
        let many = m.estimate(&inputs(40, 100.0));
        assert!(few > many);
        // And communication dominates at default rates.
        let comm_err = m.communication_infidelity(40);
        assert!(comm_err > 0.5, "40 EPR pairs should dominate: {comm_err}");
    }

    #[test]
    fn shorter_schedules_mean_higher_fidelity() {
        let m = FidelityModel::default();
        let fast = m.estimate(&inputs(10, 100.0));
        let slow = m.estimate(&inputs(10, 10_000.0));
        assert!(fast > slow);
    }

    #[test]
    fn perfect_machine_gives_unit_fidelity() {
        let m = FidelityModel {
            e_1q: 0.0,
            e_2q: 0.0,
            e_measure: 0.0,
            e_epr: 0.0,
            gamma: 0.0,
            gamma_epr: 0.0,
        };
        assert_eq!(m.estimate(&inputs(100, 1e6)), 1.0);
    }

    #[test]
    fn aged_pairs_decay_from_fresh_toward_the_mixed_floor() {
        let m = FidelityModel::default();
        assert!((m.epr_pair_fidelity(0.0) - (1.0 - m.e_epr)).abs() < 1e-12);
        assert!(m.epr_pair_fidelity(50.0) < m.epr_pair_fidelity(0.0));
        // Asymptote: the maximally mixed two-qubit state.
        assert!((m.epr_pair_fidelity(1e9) - 0.25).abs() < 1e-9);
        // Age-0 aged infidelity matches the unaged formula.
        assert!(
            (m.aged_communication_infidelity(7, 0.0) - m.communication_infidelity(7)).abs() < 1e-12
        );
    }

    #[test]
    fn inputs_for_accounts_protocol_overhead() {
        let lat = LatencyModel::default();
        let i = FidelityModel::inputs_for(10, 20, 5, 4, 50.0, &lat);
        assert_eq!(i.num_2q, 25);
        assert_eq!(i.num_measure, 10);
        assert_eq!(i.num_epr, 5);
    }
}
