//! Independent replay validation of a timeline's event log.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use dqc_circuit::{NodeId, QubitId};

use crate::{HardwareSpec, TimelineEvent};

/// A violation found while replaying a timeline event log.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// An event ends before it starts.
    NegativeDuration {
        /// Offending event label.
        label: String,
    },
    /// Two events overlap on the same logical qubit.
    QubitOverlap {
        /// The double-booked qubit.
        qubit: QubitId,
        /// Labels of the overlapping events.
        labels: (String, String),
    },
    /// Two events overlap on the same communication slot.
    SlotOverlap {
        /// The double-booked slot.
        slot: (NodeId, usize),
        /// Labels of the overlapping events.
        labels: (String, String),
    },
    /// An event references a slot index beyond the machine's budget.
    SlotOutOfRange {
        /// The offending slot.
        slot: (NodeId, usize),
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NegativeDuration { label } => {
                write!(f, "event `{label}` has negative duration")
            }
            ValidationError::QubitOverlap { qubit, labels } => {
                write!(f, "qubit {qubit} double-booked by `{}` and `{}`", labels.0, labels.1)
            }
            ValidationError::SlotOverlap { slot, labels } => write!(
                f,
                "comm slot {}#{} double-booked by `{}` and `{}`",
                slot.0, slot.1, labels.0, labels.1
            ),
            ValidationError::SlotOutOfRange { slot } => {
                write!(f, "comm slot {}#{} beyond the per-node budget", slot.0, slot.1)
            }
        }
    }
}

impl Error for ValidationError {}

const EPS: f64 = 1e-9;

/// Replays `events` and checks that no logical qubit and no communication
/// slot is ever double-booked, and that every slot index respects `hw`'s
/// per-node budget.
///
/// This check is intentionally independent of [`crate::Timeline`]'s internal
/// bookkeeping, so scheduler bugs cannot hide behind the structure that
/// produced them.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
///
/// ```
/// use dqc_circuit::{Gate, QubitId};
/// use dqc_hardware::{validate_events, HardwareSpec, Timeline};
/// let hw = HardwareSpec::symmetric(2);
/// let mut tl = Timeline::new(2, &hw).with_recording();
/// tl.schedule_gate(&Gate::h(QubitId::new(0)));
/// tl.schedule_gate(&Gate::cx(QubitId::new(0), QubitId::new(1)));
/// validate_events(tl.events().unwrap(), &hw).unwrap();
/// ```
pub fn validate_events(events: &[TimelineEvent], hw: &HardwareSpec) -> Result<(), ValidationError> {
    for e in events {
        if e.end < e.start - EPS {
            return Err(ValidationError::NegativeDuration { label: e.label.clone() });
        }
        for &(node, slot) in &e.slots {
            if slot >= hw.comm_qubits_per_node() || node.index() >= hw.num_nodes() {
                return Err(ValidationError::SlotOutOfRange { slot: (node, slot) });
            }
        }
    }

    // Per-qubit interval overlap check.
    let mut by_qubit: HashMap<QubitId, Vec<&TimelineEvent>> = HashMap::new();
    for e in events {
        for &q in &e.qubits {
            by_qubit.entry(q).or_default().push(e);
        }
    }
    for (qubit, mut list) in by_qubit {
        list.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in list.windows(2) {
            if w[1].start < w[0].end - EPS {
                return Err(ValidationError::QubitOverlap {
                    qubit,
                    labels: (w[0].label.clone(), w[1].label.clone()),
                });
            }
        }
    }

    // Per-slot interval overlap check.
    let mut by_slot: HashMap<(NodeId, usize), Vec<&TimelineEvent>> = HashMap::new();
    for e in events {
        for &s in &e.slots {
            by_slot.entry(s).or_default().push(e);
        }
    }
    for (slot, mut list) in by_slot {
        list.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in list.windows(2) {
            if w[1].start < w[0].end - EPS {
                return Err(ValidationError::SlotOverlap {
                    slot,
                    labels: (w[0].label.clone(), w[1].label.clone()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timeline;
    use dqc_circuit::Gate;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn event(
        label: &str,
        start: f64,
        end: f64,
        qubits: Vec<QubitId>,
        slots: Vec<(NodeId, usize)>,
    ) -> TimelineEvent {
        TimelineEvent { label: label.into(), start, end, qubits, slots }
    }

    #[test]
    fn valid_timeline_passes() {
        let hw = HardwareSpec::symmetric(2);
        let mut tl = Timeline::new(4, &hw).with_recording();
        tl.schedule_gate(&Gate::cx(q(0), q(1)));
        tl.schedule_gate(&Gate::cx(q(0), q(2)));
        let c = tl.claim_comm(n(0), n(1), 0.0);
        tl.release_comm(&c, 20.0);
        validate_events(tl.events().unwrap(), &hw).unwrap();
    }

    #[test]
    fn qubit_overlap_detected() {
        let hw = HardwareSpec::symmetric(1);
        let events = vec![
            event("a", 0.0, 2.0, vec![q(0)], vec![]),
            event("b", 1.0, 3.0, vec![q(0)], vec![]),
        ];
        assert!(matches!(validate_events(&events, &hw), Err(ValidationError::QubitOverlap { .. })));
    }

    #[test]
    fn slot_overlap_detected() {
        let hw = HardwareSpec::symmetric(2);
        let events = vec![
            event("a", 0.0, 5.0, vec![], vec![(n(0), 0)]),
            event("b", 4.0, 6.0, vec![], vec![(n(0), 0)]),
        ];
        assert!(matches!(validate_events(&events, &hw), Err(ValidationError::SlotOverlap { .. })));
    }

    #[test]
    fn slot_out_of_range_detected() {
        let hw = HardwareSpec::symmetric(2);
        let events = vec![event("a", 0.0, 1.0, vec![], vec![(n(0), 7)])];
        assert!(matches!(
            validate_events(&events, &hw),
            Err(ValidationError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn negative_duration_detected() {
        let hw = HardwareSpec::symmetric(1);
        let events = vec![event("a", 2.0, 1.0, vec![q(0)], vec![])];
        assert!(matches!(
            validate_events(&events, &hw),
            Err(ValidationError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn touching_intervals_are_fine() {
        let hw = HardwareSpec::symmetric(1);
        let events = vec![
            event("a", 0.0, 2.0, vec![q(0)], vec![]),
            event("b", 2.0, 3.0, vec![q(0)], vec![]),
        ];
        validate_events(&events, &hw).unwrap();
    }
}
