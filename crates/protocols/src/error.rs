//! Protocol expansion errors.

use std::error::Error;
use std::fmt;

use dqc_circuit::{CircuitError, NodeId, QubitId};

/// Errors raised while lowering a distributed program onto the physical
/// register.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A gate in a Cat-Comm body is incompatible with the cat-entangler
    /// (burst qubit not the control, or a non-diagonal gate on the burst
    /// qubit).
    NotCatCompatible {
        /// Rendering of the offending gate.
        gate: String,
        /// Why it cannot ride a single cat-entanglement.
        reason: &'static str,
    },
    /// A block body touches a qubit outside the burst qubit and the remote
    /// node.
    ForeignQubit {
        /// The out-of-scope qubit.
        qubit: QubitId,
        /// The node the block communicates with.
        node: NodeId,
    },
    /// A block was requested between a qubit and its own node.
    NotRemote {
        /// The burst qubit.
        qubit: QubitId,
    },
    /// The interconnect topology cannot serve the partition (node-count
    /// mismatch or disconnected node pairs).
    Topology {
        /// Why the topology is unusable.
        message: String,
    },
    /// An underlying circuit construction failed.
    Circuit(CircuitError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotCatCompatible { gate, reason } => {
                write!(f, "gate `{gate}` cannot ride a single Cat-Comm: {reason}")
            }
            ProtocolError::ForeignQubit { qubit, node } => {
                write!(f, "qubit {qubit} is neither the burst qubit nor on node {node}")
            }
            ProtocolError::NotRemote { qubit } => {
                write!(f, "burst qubit {qubit} already lives on the target node")
            }
            ProtocolError::Topology { message } => {
                write!(f, "unusable interconnect topology: {message}")
            }
            ProtocolError::Circuit(e) => write!(f, "circuit error during expansion: {e}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for ProtocolError {
    fn from(e: CircuitError) -> Self {
        ProtocolError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::NotRemote { qubit: QubitId::new(3) };
        assert!(e.to_string().contains("q3"));
        let e = ProtocolError::ForeignQubit { qubit: QubitId::new(1), node: NodeId::new(2) };
        assert!(e.to_string().contains("N2"));
    }

    #[test]
    fn circuit_errors_convert() {
        let ce = CircuitError::DuplicateOperand { qubit: QubitId::new(0) };
        let pe: ProtocolError = ce.clone().into();
        assert!(matches!(pe, ProtocolError::Circuit(_)));
        assert!(std::error::Error::source(&pe).is_some());
    }
}
