//! Physical expansion of remote communication protocols.
//!
//! The AutoComm paper implements burst-communication blocks with two
//! schemes (paper Figures 2 and 3):
//!
//! * **Cat-Comm** — cat-entangler copies the burst qubit's computational
//!   value onto a remote communication qubit (one EPR pair, one
//!   measurement, one conditioned X), the block body executes locally on
//!   the remote node with the communication qubit standing in as control,
//!   and the cat-disentangler uncomputes the copy (one measurement, one
//!   conditioned Z). Valid only when every remote gate uses the burst qubit
//!   as *control* and no non-diagonal gate touches the burst qubit inside
//!   the block.
//! * **TP-Comm** — teleports the burst qubit to the remote node (one EPR
//!   pair), executes an arbitrary body, and teleports it back (second EPR
//!   pair, the paper's “dirty side-effect” accounting).
//!
//! [`ProtocolExpander`] lowers a distributed program onto a physical
//! register (logical qubits + two communication qubits per node) emitting
//! real measurements and classically conditioned corrections, so the whole
//! construction can be *verified* against the logical circuit with
//! `dqc-sim` — which this crate's test-suite and `tests/` do exhaustively.
//!
//! # Example
//!
//! ```
//! use dqc_circuit::{Gate, NodeId, Partition, QubitId};
//! use dqc_protocols::ProtocolExpander;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |i| QubitId::new(i);
//! let partition = Partition::block(4, 2)?; // {0,1} on N0, {2,3} on N1
//! let mut exp = ProtocolExpander::new(&partition);
//! // One cat-comm block: q0 controls CXs onto both qubits of node 1.
//! exp.cat_comm_block(q(0), NodeId::new(1), &[
//!     Gate::cx(q(0), q(2)),
//!     Gate::cx(q(0), q(3)),
//! ])?;
//! let physical = exp.finish();
//! assert_eq!(physical.epr_pairs, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expander;

pub use error::ProtocolError;
pub use expander::{PhysicalProgram, ProtocolExpander};
