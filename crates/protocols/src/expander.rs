//! Lowering of distributed programs onto the physical register.

use dqc_circuit::{AxisBehavior, CBitId, Circuit, Gate, NodeId, Partition, QubitId};
use dqc_hardware::NetworkTopology;

use crate::ProtocolError;

/// Result of lowering: the physical circuit plus protocol accounting.
///
/// The physical register holds the logical qubits first, then two
/// communication qubits per node: node `i` owns physical qubits
/// `n + 2i` (slot 0) and `n + 2i + 1` (slot 1).
#[derive(Clone, Debug)]
pub struct PhysicalProgram {
    /// The lowered circuit (logical + communication qubits, with
    /// measurements and conditioned corrections).
    pub circuit: Circuit,
    /// EPR pairs consumed (one per hop of every routed communication).
    pub epr_pairs: usize,
    /// Entanglement swaps performed at relay nodes of multi-hop routes.
    pub swaps: usize,
    /// Number of logical qubits (a prefix of the register).
    pub num_logical: usize,
    /// Cat-Comm blocks expanded.
    pub cat_blocks: usize,
    /// TP-Comm blocks expanded.
    pub tp_blocks: usize,
}

impl PhysicalProgram {
    /// The logical-qubit ids `0..num_logical` (for fidelity checks).
    pub fn logical_qubits(&self) -> Vec<QubitId> {
        (0..self.num_logical).map(QubitId::new).collect()
    }
}

/// Builds a physical circuit by interleaving local gates with Cat-Comm and
/// TP-Comm block expansions (paper Figures 2–3).
///
/// The expander is the *functional* counterpart of the latency scheduler:
/// it emits every EPR preparation, measurement, and conditioned correction
/// so the result can be simulated and checked against the logical program.
/// On sparse topologies ([`ProtocolExpander::with_topology`]) end-to-end
/// entanglement between non-adjacent nodes is emitted as a real swap
/// chain: per-hop EPR generations followed by a Bell measurement at every
/// relay node with classically conditioned corrections.
///
/// The expansion is deliberately independent of *when* the scheduler
/// materializes each pair: a pair popped from an EPR buffer (prefetched
/// generation under a buffered `BufferPolicy`) lowers to exactly the same
/// Cat/TP gate sequence as an on-demand pair, so buffered schedules stay
/// simulator-exact by construction (`tests/buffer_properties.rs` verifies
/// this end to end).
#[derive(Clone, Debug)]
pub struct ProtocolExpander {
    circuit: Circuit,
    partition: Partition,
    topology: NetworkTopology,
    num_logical: usize,
    next_cbit: usize,
    epr_pairs: usize,
    swaps: usize,
    cat_blocks: usize,
    tp_blocks: usize,
}

impl ProtocolExpander {
    /// Creates an expander for programs over `partition`'s qubits with the
    /// paper's all-to-all connectivity; the physical register adds two
    /// communication qubits per node.
    pub fn new(partition: &Partition) -> Self {
        ProtocolExpander::with_topology(
            partition,
            NetworkTopology::all_to_all(partition.num_nodes()),
        )
        .expect("all-to-all matches every partition")
    }

    /// Creates an expander lowering against an explicit interconnect
    /// `topology`; non-adjacent blocks expand through entanglement-swap
    /// chains.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Topology`] when the topology's node count disagrees
    /// with the partition's or some node pair is disconnected.
    pub fn with_topology(
        partition: &Partition,
        topology: NetworkTopology,
    ) -> Result<Self, ProtocolError> {
        if topology.num_nodes() != partition.num_nodes() {
            return Err(ProtocolError::Topology {
                message: format!(
                    "topology covers {} node(s) but the partition has {}",
                    topology.num_nodes(),
                    partition.num_nodes()
                ),
            });
        }
        if !topology.is_connected() {
            return Err(ProtocolError::Topology {
                message: "the interconnect topology is disconnected".into(),
            });
        }
        let n = partition.num_qubits();
        let total = n + 2 * partition.num_nodes();
        Ok(ProtocolExpander {
            circuit: Circuit::with_cbits(total, 0),
            partition: partition.clone(),
            topology,
            num_logical: n,
            next_cbit: 0,
            epr_pairs: 0,
            swaps: 0,
            cat_blocks: 0,
            tp_blocks: 0,
        })
    }

    /// The communication qubit `slot` (0 or 1) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `slot > 1` or `node` is out of range.
    pub fn comm_qubit(&self, node: NodeId, slot: usize) -> QubitId {
        assert!(slot < 2, "two communication qubits per node");
        assert!(node.index() < self.partition.num_nodes(), "node out of range");
        QubitId::new(self.num_logical + 2 * node.index() + slot)
    }

    /// Appends a local (single-node) gate unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NotCatCompatible`] — reused as a generic
    /// rejection — when the gate is remote under the partition; remote
    /// gates must go through a block expansion.
    pub fn push_local(&mut self, gate: &Gate) -> Result<(), ProtocolError> {
        if self.partition.is_remote(gate) {
            return Err(ProtocolError::NotCatCompatible {
                gate: gate.to_string(),
                reason: "remote gates must be lowered through a communication block",
            });
        }
        self.circuit.push(gate.clone())?;
        Ok(())
    }

    /// Expands one Cat-Comm burst block between `burst` (living on its home
    /// node) and `node` (paper Fig. 3a): one EPR pair, cat-entangle, the
    /// body with the burst qubit redirected onto the remote communication
    /// qubit, cat-disentangle.
    ///
    /// Body gates must each either (a) be Z-diagonal on the burst qubit
    /// with all other operands on `node` (remote CX must have the burst
    /// qubit as control), (b) act only on `node`'s qubits, or (c) be a
    /// single-qubit Z-diagonal gate on the burst qubit.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotRemote`] if `burst` lives on `node`;
    /// [`ProtocolError::NotCatCompatible`] / [`ProtocolError::ForeignQubit`]
    /// for invalid bodies.
    pub fn cat_comm_block(
        &mut self,
        burst: QubitId,
        node: NodeId,
        body: &[Gate],
    ) -> Result<(), ProtocolError> {
        let home = self.partition.node_of(burst);
        if home == node {
            return Err(ProtocolError::NotRemote { qubit: burst });
        }
        for gate in body {
            self.validate_block_gate(gate, burst, node, true)?;
        }

        let ca = self.comm_qubit(home, 0);
        let cb = self.comm_qubit(node, 0);
        self.entangle_ends(home, node, ca, cb)?;

        // Cat-entangler (Fig. 2a left): copy the burst value onto cb.
        let c0 = self.fresh_cbit();
        self.circuit.push(Gate::cx(burst, ca))?;
        self.circuit.push(Gate::measure(ca, c0))?;
        self.circuit.push(Gate::x(cb).with_condition(c0))?;

        // Body: redirect the burst operand onto the copy.
        for gate in body {
            let mapped = if gate.acts_on(burst) && gate.num_qubits() > 1 {
                gate.map_qubits(|q| if q == burst { cb } else { q })
            } else {
                gate.clone()
            };
            self.circuit.push(mapped)?;
        }

        // Cat-disentangler (Fig. 2a right): uncompute the copy.
        let c1 = self.fresh_cbit();
        self.circuit.push(Gate::h(cb))?;
        self.circuit.push(Gate::measure(cb, c1))?;
        self.circuit.push(Gate::z(burst).with_condition(c1))?;

        // Leave both communication qubits clean for reuse.
        self.circuit.push(Gate::reset(ca))?;
        self.circuit.push(Gate::reset(cb))?;
        self.cat_blocks += 1;
        Ok(())
    }

    /// Expands one TP-Comm burst block (paper Fig. 3b): teleport `burst` to
    /// `node`, run the arbitrary body there, teleport it home — consuming
    /// the paper's two EPR pairs (the second handles the “dirty
    /// side-effect” of the occupied communication qubit).
    ///
    /// Body gates may touch the burst qubit in any role; all other operands
    /// must live on `node`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotRemote`] if `burst` lives on `node`;
    /// [`ProtocolError::ForeignQubit`] for out-of-scope operands.
    pub fn tp_comm_block(
        &mut self,
        burst: QubitId,
        node: NodeId,
        body: &[Gate],
    ) -> Result<(), ProtocolError> {
        let home = self.partition.node_of(burst);
        if home == node {
            return Err(ProtocolError::NotRemote { qubit: burst });
        }
        for gate in body {
            self.validate_block_gate(gate, burst, node, false)?;
        }

        let ca = self.comm_qubit(home, 0);
        let cb = self.comm_qubit(node, 0);
        let cb2 = self.comm_qubit(node, 1);

        // Teleport burst → cb.
        self.entangle_ends(home, node, ca, cb)?;
        let (c0, c1) = (self.fresh_cbit(), self.fresh_cbit());
        self.circuit.push(Gate::cx(burst, ca))?;
        self.circuit.push(Gate::h(burst))?;
        self.circuit.push(Gate::measure(burst, c0))?;
        self.circuit.push(Gate::measure(ca, c1))?;
        self.circuit.push(Gate::x(cb).with_condition(c1))?;
        self.circuit.push(Gate::z(cb).with_condition(c0))?;

        // Body executes locally at `node`, with cb standing in for burst.
        for gate in body {
            let mapped = gate.map_qubits(|q| if q == burst { cb } else { q });
            self.circuit.push(mapped)?;
        }

        // Teleport cb → burst. The home-side EPR half is placed directly on
        // the (now measured-out) burst wire, standing in for a communication
        // qubit plus a free local relocation, which the paper does not
        // charge either.
        self.entangle_ends(home, node, burst, cb2)?;
        let (c2, c3) = (self.fresh_cbit(), self.fresh_cbit());
        self.circuit.push(Gate::cx(cb, cb2))?;
        self.circuit.push(Gate::h(cb))?;
        self.circuit.push(Gate::measure(cb, c2))?;
        self.circuit.push(Gate::measure(cb2, c3))?;
        self.circuit.push(Gate::x(burst).with_condition(c3))?;
        self.circuit.push(Gate::z(burst).with_condition(c2))?;

        self.circuit.push(Gate::reset(ca))?;
        self.circuit.push(Gate::reset(cb))?;
        self.circuit.push(Gate::reset(cb2))?;
        self.tp_blocks += 1;
        Ok(())
    }

    /// Finishes lowering and returns the physical program.
    pub fn finish(self) -> PhysicalProgram {
        PhysicalProgram {
            circuit: self.circuit,
            epr_pairs: self.epr_pairs,
            swaps: self.swaps,
            num_logical: self.num_logical,
            cat_blocks: self.cat_blocks,
            tp_blocks: self.tp_blocks,
        }
    }

    /// EPR pairs consumed so far.
    pub fn epr_pairs(&self) -> usize {
        self.epr_pairs
    }

    /// Establishes end-to-end entanglement between `q_from` (on node
    /// `from`) and `q_to` (on node `to`) along the topology's routed path.
    /// Adjacent nodes get a plain EPR preparation; longer routes emit one
    /// EPR generation per hop followed by a Bell measurement at every relay
    /// with classically conditioned corrections (entanglement swapping),
    /// leaving the relay communication qubits reset for reuse.
    fn entangle_ends(
        &mut self,
        from: NodeId,
        to: NodeId,
        q_from: QubitId,
        q_to: QubitId,
    ) -> Result<(), ProtocolError> {
        let path = self.topology.path(from, to).expect("with_topology validated full connectivity");
        let k = path.len() - 1;
        if k == 1 {
            return self.prepare_epr(q_from, q_to);
        }
        // Per-hop pairs: relay i receives on slot 0 and forwards on slot 1.
        for i in 0..k {
            let src = if i == 0 { q_from } else { self.comm_qubit(path[i], 1) };
            let dst = if i + 1 == k { q_to } else { self.comm_qubit(path[i + 1], 0) };
            self.prepare_epr(src, dst)?;
        }
        // Swap left to right: each relay's Bell measurement splices its two
        // halves; corrections land on the far end of the right-hand pair.
        for i in 1..k {
            let m_in = self.comm_qubit(path[i], 0);
            let m_out = self.comm_qubit(path[i], 1);
            let far = if i + 1 == k { q_to } else { self.comm_qubit(path[i + 1], 0) };
            let (c0, c1) = (self.fresh_cbit(), self.fresh_cbit());
            self.circuit.push(Gate::cx(m_in, m_out))?;
            self.circuit.push(Gate::h(m_in))?;
            self.circuit.push(Gate::measure(m_in, c0))?;
            self.circuit.push(Gate::measure(m_out, c1))?;
            self.circuit.push(Gate::x(far).with_condition(c1))?;
            self.circuit.push(Gate::z(far).with_condition(c0))?;
            self.circuit.push(Gate::reset(m_in))?;
            self.circuit.push(Gate::reset(m_out))?;
            self.swaps += 1;
        }
        Ok(())
    }

    fn validate_block_gate(
        &self,
        gate: &Gate,
        burst: QubitId,
        node: NodeId,
        cat: bool,
    ) -> Result<(), ProtocolError> {
        if gate.condition().is_some() {
            return Err(ProtocolError::NotCatCompatible {
                gate: gate.to_string(),
                reason: "conditioned gates cannot appear inside a block body",
            });
        }
        for &q in gate.qubits() {
            if q != burst && self.partition.node_of(q) != node {
                return Err(ProtocolError::ForeignQubit { qubit: q, node });
            }
        }
        if cat && gate.acts_on(burst) {
            let behavior = AxisBehavior::of(gate, burst);
            if behavior != AxisBehavior::ZDiag {
                return Err(ProtocolError::NotCatCompatible {
                    gate: gate.to_string(),
                    reason: "the burst qubit must be Z-diagonal (control side) under Cat-Comm",
                });
            }
        }
        Ok(())
    }

    fn prepare_epr(&mut self, a: QubitId, b: QubitId) -> Result<(), ProtocolError> {
        self.circuit.push(Gate::reset(a))?;
        self.circuit.push(Gate::reset(b))?;
        self.circuit.push(Gate::h(a))?;
        self.circuit.push(Gate::cx(a, b))?;
        self.epr_pairs += 1;
        Ok(())
    }

    fn fresh_cbit(&mut self) -> CBitId {
        let c = CBitId::new(self.next_cbit);
        self.next_cbit += 1;
        self.circuit.ensure_cbits(self.next_cbit);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_hardware::NetworkTopology;
    use dqc_sim::{SplitMix64, StateVector};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Runs `logical` and the `physical` lowering from the same random
    /// input and returns the fidelity of the logical register.
    fn lowering_fidelity(logical: &Circuit, physical: &PhysicalProgram, seed: u64) -> f64 {
        let mut rng = SplitMix64::new(seed);
        let expected_in = StateVector::random_state(logical.num_qubits(), &mut rng).unwrap();
        let mut expected = expected_in.clone();
        expected.run(logical, &mut rng.fork()).unwrap();

        // Embed the same input on the physical register (comm qubits |0⟩).
        let total = physical.circuit.num_qubits();
        let mut amps = vec![dqc_sim::Complex::ZERO; 1 << total];
        amps[..expected_in.amplitudes().len()].copy_from_slice(expected_in.amplitudes());
        let mut state = StateVector::from_amplitudes(amps).unwrap();
        state.run(&physical.circuit, &mut rng).unwrap();
        state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
    }

    #[test]
    fn cat_single_remote_cx_is_exact() {
        let partition = Partition::block(4, 2).unwrap();
        let mut exp = ProtocolExpander::new(&partition);
        exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(0), q(2))]).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 1);
        assert_eq!(physical.cat_blocks, 1);

        let mut logical = Circuit::new(4);
        logical.push(Gate::cx(q(0), q(2))).unwrap();
        for seed in 1..6 {
            let f = lowering_fidelity(&logical, &physical, seed);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} at seed {seed}");
        }
    }

    #[test]
    fn cat_controlled_unitary_block_is_exact() {
        // Paper Fig. 3a: C-U1-U2 with one EPR pair.
        let partition = Partition::block(4, 2).unwrap();
        let body = vec![
            Gate::cx(q(0), q(2)),
            Gate::ry(0.3, q(2)), // U1 on the remote node
            Gate::cx(q(0), q(3)),
            Gate::h(q(3)), // U2
            Gate::cx(q(0), q(2)),
            Gate::rz(0.9, q(0)), // diagonal on the burst qubit: allowed
        ];
        let mut exp = ProtocolExpander::new(&partition);
        exp.cat_comm_block(q(0), n(1), &body).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 1);

        let mut logical = Circuit::new(4);
        logical.extend_gates(body).unwrap();
        let f = lowering_fidelity(&logical, &physical, 7);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn cat_with_diagonal_two_qubit_gates() {
        let partition = Partition::block(4, 2).unwrap();
        let body = vec![
            Gate::crz(0.4, q(0), q(2)),
            Gate::rzz(0.7, q(0), q(3)),
            Gate::cp(0.2, q(2), q(0)), // burst as second operand of a diagonal gate
        ];
        let mut exp = ProtocolExpander::new(&partition);
        exp.cat_comm_block(q(0), n(1), &body).unwrap();
        let physical = exp.finish();

        let mut logical = Circuit::new(4);
        logical.extend_gates(body).unwrap();
        let f = lowering_fidelity(&logical, &physical, 11);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn cat_rejects_target_form_and_opaque_interior() {
        let partition = Partition::block(4, 2).unwrap();
        let mut exp = ProtocolExpander::new(&partition);
        // Burst qubit as CX target.
        let err = exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(2), q(0))]).unwrap_err();
        assert!(matches!(err, ProtocolError::NotCatCompatible { .. }));
        // H on the burst qubit inside the block.
        let err =
            exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(0), q(2)), Gate::h(q(0))]).unwrap_err();
        assert!(matches!(err, ProtocolError::NotCatCompatible { .. }));
        // Foreign qubit (q1 lives on node 0, not node 1).
        let err = exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(0), q(1))]).unwrap_err();
        assert!(matches!(err, ProtocolError::ForeignQubit { .. }));
        // Not remote.
        let err = exp.cat_comm_block(q(0), n(0), &[]).unwrap_err();
        assert!(matches!(err, ProtocolError::NotRemote { .. }));
    }

    #[test]
    fn tp_bidirectional_block_is_exact() {
        // A block Cat-Comm cannot express: burst acts as control AND target,
        // with an H on the burst qubit in between (paper Fig. 9b).
        let partition = Partition::block(4, 2).unwrap();
        let body = vec![
            Gate::cx(q(0), q(2)),
            Gate::h(q(0)),
            Gate::cx(q(3), q(0)),
            Gate::t(q(0)),
            Gate::cx(q(0), q(3)),
        ];
        let mut exp = ProtocolExpander::new(&partition);
        exp.tp_comm_block(q(0), n(1), &body).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 2);
        assert_eq!(physical.tp_blocks, 1);

        let mut logical = Circuit::new(4);
        logical.extend_gates(body).unwrap();
        for seed in 20..24 {
            let f = lowering_fidelity(&logical, &physical, seed);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} at seed {seed}");
        }
    }

    #[test]
    fn tp_rejects_foreign_and_local() {
        let partition = Partition::block(6, 3).unwrap();
        let mut exp = ProtocolExpander::new(&partition);
        let err = exp.tp_comm_block(q(0), n(1), &[Gate::cx(q(0), q(4))]).unwrap_err();
        assert!(matches!(err, ProtocolError::ForeignQubit { .. }));
        let err = exp.tp_comm_block(q(2), n(1), &[]).unwrap_err();
        assert!(matches!(err, ProtocolError::NotRemote { .. }));
    }

    #[test]
    fn mixed_program_with_local_gates() {
        let partition = Partition::block(4, 2).unwrap();
        let mut exp = ProtocolExpander::new(&partition);
        exp.push_local(&Gate::h(q(0))).unwrap();
        exp.push_local(&Gate::cx(q(2), q(3))).unwrap();
        exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(0), q(2))]).unwrap();
        exp.push_local(&Gate::h(q(0))).unwrap();
        exp.tp_comm_block(q(1), n(1), &[Gate::cx(q(2), q(1)), Gate::cx(q(1), q(3))]).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 3);

        let mut logical = Circuit::new(4);
        logical.push(Gate::h(q(0))).unwrap();
        logical.push(Gate::cx(q(2), q(3))).unwrap();
        logical.push(Gate::cx(q(0), q(2))).unwrap();
        logical.push(Gate::h(q(0))).unwrap();
        logical.push(Gate::cx(q(2), q(1))).unwrap();
        logical.push(Gate::cx(q(1), q(3))).unwrap();
        for seed in 40..44 {
            let f = lowering_fidelity(&logical, &physical, seed);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} at seed {seed}");
        }
    }

    #[test]
    fn push_local_rejects_remote_gates() {
        let partition = Partition::block(4, 2).unwrap();
        let mut exp = ProtocolExpander::new(&partition);
        assert!(exp.push_local(&Gate::cx(q(0), q(2))).is_err());
    }

    #[test]
    fn comm_qubit_layout() {
        let partition = Partition::block(4, 2).unwrap();
        let exp = ProtocolExpander::new(&partition);
        assert_eq!(exp.comm_qubit(n(0), 0), q(4));
        assert_eq!(exp.comm_qubit(n(0), 1), q(5));
        assert_eq!(exp.comm_qubit(n(1), 0), q(6));
        assert_eq!(exp.comm_qubit(n(1), 1), q(7));
    }

    #[test]
    fn multi_hop_cat_block_is_exact() {
        // Home node 0, remote node 2 on a 3-node chain: the cat block's
        // entanglement is a 2-hop swap chain through node 1.
        let partition = Partition::block(6, 3).unwrap();
        let topology = NetworkTopology::linear(3).unwrap();
        let mut exp = ProtocolExpander::with_topology(&partition, topology).unwrap();
        exp.cat_comm_block(q(0), n(2), &[Gate::cx(q(0), q(4)), Gate::cx(q(0), q(5))]).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 2, "one pair per hop");
        assert_eq!(physical.swaps, 1, "one relay");

        let mut logical = Circuit::new(6);
        logical.push(Gate::cx(q(0), q(4))).unwrap();
        logical.push(Gate::cx(q(0), q(5))).unwrap();
        for seed in 60..64 {
            let f = lowering_fidelity(&logical, &physical, seed);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} at seed {seed}");
        }
    }

    #[test]
    fn multi_hop_tp_block_is_exact() {
        // A bidirectional block between the two ends of a 4-node chain:
        // both teleport legs route through two relays.
        let partition = Partition::block(8, 4).unwrap();
        let topology = NetworkTopology::linear(4).unwrap();
        let mut exp = ProtocolExpander::with_topology(&partition, topology).unwrap();
        let body = vec![Gate::cx(q(0), q(6)), Gate::h(q(0)), Gate::cx(q(7), q(0))];
        exp.tp_comm_block(q(0), n(3), &body).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 6, "3 hops out + 3 hops back");
        assert_eq!(physical.swaps, 4, "2 relays per leg");

        let mut logical = Circuit::new(8);
        logical.extend_gates(body).unwrap();
        for seed in 70..73 {
            let f = lowering_fidelity(&logical, &physical, seed);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} at seed {seed}");
        }
    }

    #[test]
    fn all_to_all_expansion_is_unchanged_by_topology_plumbing() {
        let partition = Partition::block(4, 2).unwrap();
        let body = vec![Gate::cx(q(0), q(2))];
        let mut implicit = ProtocolExpander::new(&partition);
        implicit.cat_comm_block(q(0), n(1), &body).unwrap();
        let mut explicit =
            ProtocolExpander::with_topology(&partition, NetworkTopology::all_to_all(2)).unwrap();
        explicit.cat_comm_block(q(0), n(1), &body).unwrap();
        let (a, b) = (implicit.finish(), explicit.finish());
        assert_eq!(a.epr_pairs, b.epr_pairs);
        assert_eq!(a.swaps, 0);
        assert_eq!(a.circuit.gates(), b.circuit.gates());
    }

    #[test]
    fn bad_topologies_are_rejected() {
        let partition = Partition::block(6, 3).unwrap();
        let err = ProtocolExpander::with_topology(&partition, NetworkTopology::linear(2).unwrap())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Topology { .. }));
        let disconnected =
            NetworkTopology::from_links("x", 3, vec![dqc_hardware::Link::new(n(0), n(1))]).unwrap();
        let err = ProtocolExpander::with_topology(&partition, disconnected).unwrap_err();
        assert!(matches!(err, ProtocolError::Topology { .. }));
    }

    #[test]
    fn comm_qubits_are_reusable_across_blocks() {
        // Two sequential cat blocks over the same node pair must reuse the
        // same comm qubits cleanly (resets between blocks).
        let partition = Partition::block(4, 2).unwrap();
        let body1 = vec![Gate::cx(q(0), q(2))];
        let body2 = vec![Gate::cx(q(1), q(3))];
        let mut exp = ProtocolExpander::new(&partition);
        exp.cat_comm_block(q(0), n(1), &body1).unwrap();
        exp.cat_comm_block(q(1), n(1), &body2).unwrap();
        let physical = exp.finish();
        assert_eq!(physical.epr_pairs, 2);

        let mut logical = Circuit::new(4);
        logical.extend_gates(body1).unwrap();
        logical.extend_gates(body2).unwrap();
        let f = lowering_fidelity(&logical, &physical, 99);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }
}
