//! Multi-node protocol scenarios: sequential communications over shared
//! comm qubits, three-node programs, and randomized block bodies — all
//! verified against direct simulation.

use dqc_circuit::{Circuit, Gate, NodeId, Partition, QubitId};
use dqc_protocols::{PhysicalProgram, ProtocolExpander};
use dqc_sim::{Complex, SplitMix64, StateVector};

fn q(i: usize) -> QubitId {
    QubitId::new(i)
}

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn fidelity(logical: &Circuit, physical: &PhysicalProgram, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(logical.num_qubits(), &mut rng).unwrap();
    let mut expected = input.clone();
    expected.run(logical, &mut rng.fork()).unwrap();
    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).unwrap();
    state.run(&physical.circuit, &mut rng).unwrap();
    state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
}

#[test]
fn three_node_ring_of_cat_blocks() {
    // q0 → node1, q2 → node2, q4 → node0: a ring of communications that
    // exercises every node's comm qubits.
    let partition = Partition::block(6, 3).unwrap();
    let mut exp = ProtocolExpander::new(&partition);
    exp.cat_comm_block(q(0), n(1), &[Gate::cx(q(0), q(2)), Gate::cx(q(0), q(3))]).unwrap();
    exp.cat_comm_block(q(2), n(2), &[Gate::cx(q(2), q(4))]).unwrap();
    exp.cat_comm_block(q(4), n(0), &[Gate::cx(q(4), q(0)), Gate::cx(q(4), q(1))]).unwrap();
    let physical = exp.finish();
    assert_eq!(physical.epr_pairs, 3);

    let mut logical = Circuit::new(6);
    logical.push(Gate::cx(q(0), q(2))).unwrap();
    logical.push(Gate::cx(q(0), q(3))).unwrap();
    logical.push(Gate::cx(q(2), q(4))).unwrap();
    logical.push(Gate::cx(q(4), q(0))).unwrap();
    logical.push(Gate::cx(q(4), q(1))).unwrap();
    for seed in 0..3 {
        let f = fidelity(&logical, &physical, 60 + seed);
        assert!((f - 1.0).abs() < 1e-9, "ring fidelity {f}");
    }
}

#[test]
fn tp_then_cat_on_same_node_pair() {
    let partition = Partition::block(4, 2).unwrap();
    let mut exp = ProtocolExpander::new(&partition);
    exp.tp_comm_block(q(0), n(1), &[Gate::cx(q(0), q(2)), Gate::cx(q(3), q(0))]).unwrap();
    exp.cat_comm_block(q(1), n(1), &[Gate::cx(q(1), q(3))]).unwrap();
    let physical = exp.finish();
    assert_eq!(physical.epr_pairs, 3);
    assert_eq!(physical.tp_blocks, 1);
    assert_eq!(physical.cat_blocks, 1);

    let mut logical = Circuit::new(4);
    logical.push(Gate::cx(q(0), q(2))).unwrap();
    logical.push(Gate::cx(q(3), q(0))).unwrap();
    logical.push(Gate::cx(q(1), q(3))).unwrap();
    let f = fidelity(&logical, &physical, 7);
    assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
}

#[test]
fn randomized_cat_bodies_are_exact() {
    // Control-form bodies with random interior node-local unitaries.
    let partition = Partition::block(4, 2).unwrap();
    let mut stream = SplitMix64::new(321);
    for trial in 0..10 {
        let theta = stream.next_f64() * 6.0;
        let body = vec![
            Gate::cx(q(0), q(2)),
            Gate::ry(theta, q(2)),
            Gate::cx(q(0), q(3)),
            Gate::u3(theta, 0.3, 1.1, q(3)),
            Gate::cx(q(0), q(2)),
            Gate::rz(theta, q(0)), // diagonal on the burst qubit
        ];
        let mut exp = ProtocolExpander::new(&partition);
        exp.cat_comm_block(q(0), n(1), &body).unwrap();
        let physical = exp.finish();

        let mut logical = Circuit::new(4);
        logical.extend_gates(body).unwrap();
        let f = fidelity(&logical, &physical, 500 + trial);
        assert!((f - 1.0).abs() < 1e-9, "trial {trial}: fidelity {f}");
    }
}

#[test]
fn randomized_tp_bodies_are_exact() {
    let partition = Partition::block(4, 2).unwrap();
    let mut stream = SplitMix64::new(654);
    for trial in 0..10 {
        let theta = stream.next_f64() * 6.0;
        let body = vec![
            Gate::cx(q(0), q(2)),
            Gate::h(q(0)),
            Gate::rzz(theta, q(0), q(3)),
            Gate::cx(q(3), q(0)),
            Gate::ry(theta, q(0)),
        ];
        let mut exp = ProtocolExpander::new(&partition);
        exp.tp_comm_block(q(0), n(1), &body).unwrap();
        let physical = exp.finish();

        let mut logical = Circuit::new(4);
        logical.extend_gates(body).unwrap();
        let f = fidelity(&logical, &physical, 900 + trial);
        assert!((f - 1.0).abs() < 1e-9, "trial {trial}: fidelity {f}");
    }
}

#[test]
fn physical_register_layout_is_stable() {
    // Logical qubits first, then two comm qubits per node — downstream
    // consumers (fidelity checks, QASM round-trips) rely on this layout.
    let partition = Partition::block(6, 3).unwrap();
    let exp = ProtocolExpander::new(&partition);
    assert_eq!(exp.comm_qubit(n(0), 0), q(6));
    assert_eq!(exp.comm_qubit(n(2), 1), q(11));
    let physical = exp.finish();
    assert_eq!(physical.circuit.num_qubits(), 12);
    assert_eq!(physical.logical_qubits(), (0..6).map(q).collect::<Vec<_>>());
}
