//! The `autocomm serve` daemon: compile-as-a-service over TCP.
//!
//! The indexed-IR pipeline made single compiles cheap; what stays
//! expensive in an edit-compile-evaluate loop is paying that cost again
//! for inputs the service has already seen. `serve` keeps a persistent
//! process around a **content-addressed artifact cache**: jobs arrive as
//! newline-delimited JSON over a socket, are keyed by the circuit's
//! 128-bit content hash ([`dqc_circuit::circuit_content_hash`]) plus
//! every compilation-relevant flag, and repeat submissions are answered
//! from the cache with the exact bytes a cold compile would produce
//! (responses share their section builders with `compile --json`, see
//! [`crate::sections`]).
//!
//! Three mechanisms carry the load:
//!
//! * a persistent [`WorkerPool`] compiles cache misses off the connection
//!   threads (connections only parse, hash, and wait);
//! * **single-flight** deduplication: N concurrent submissions of the
//!   same cold key enqueue one compile — the rest wait on the in-flight
//!   entry and are answered from its result;
//! * a bounded **LRU** over ready entries keeps residency flat under
//!   sweep workloads.
//!
//! The protocol (one JSON object per line, see `docs/service.md`):
//!
//! ```text
//! → {"op":"compile","qasm":"...","nodes":4,"placement":"topo", ...}
//! ← {"status":"ok","key":"<hash>:...","artifact":{...}}
//! → {"op":"stats"}
//! ← {"status":"ok","stats":{"cache_hits":...,"e2e_ms":{"p50":...},...}}
//! → {"op":"shutdown"}
//! ← {"status":"ok","shutdown":true}
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use autocomm::{Ablation, ArtifactCircuitStats, ArtifactConfig, CompiledArtifact};
use dqc_circuit::{circuit_content_hash, from_qasm, Circuit, CircuitStats};
use dqc_hardware::BufferPolicy;

use crate::json::Json;
use crate::pool::{catch_panic, WorkerPool};
use crate::sections::{artifact_json, latency_json, pass_latency_json};
use crate::{
    build_hardware, build_partition, compiler_for, parse_buffer, parse_strategy, placement_config,
    CliError, PartitionStrategy, USAGE,
};

/// Parsed `autocomm serve` invocation.
#[derive(Clone, Debug)]
pub struct ServeArgs {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Compile worker threads.
    pub workers: usize,
    /// Maximum ready artifacts kept in the LRU cache.
    pub cache_capacity: usize,
    /// Write the bound port (as one decimal line) here once listening —
    /// how shell drivers (the CI gate) find an ephemeral port.
    pub port_file: Option<PathBuf>,
}

impl ServeArgs {
    /// Parses the arguments following the `serve` subcommand.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ServeArgs, CliError> {
        let usage = |msg: String| CliError::Usage(format!("{msg}\n\n{USAGE}"));
        let mut port = 7878u16;
        let mut workers = default_workers();
        let mut cache_capacity = 256usize;
        let mut port_file = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for =
                |flag: &str| iter.next().ok_or_else(|| usage(format!("{flag} needs a value")));
            match arg.as_str() {
                "--port" => {
                    let v = value_for("--port")?;
                    port = v
                        .parse::<u16>()
                        .map_err(|_| usage(format!("--port: '{v}' is not a port number")))?;
                }
                "--jobs" => {
                    let v = value_for("--jobs")?;
                    workers =
                        v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                            usage(format!("--jobs: '{v}' is not a positive integer"))
                        })?;
                }
                "--cache-cap" => {
                    let v = value_for("--cache-cap")?;
                    cache_capacity =
                        v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                            usage(format!("--cache-cap: '{v}' is not a positive integer"))
                        })?;
                }
                "--port-file" => port_file = Some(PathBuf::from(value_for("--port-file")?)),
                other => return Err(usage(format!("unknown option '{other}'"))),
            }
        }
        Ok(ServeArgs { port, workers, cache_capacity, port_file })
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// One fully-specified compile job, as decoded from a request line.
#[derive(Clone, Debug)]
struct JobSpec {
    qasm: String,
    nodes: usize,
    comm_qubits: usize,
    topology: Option<String>,
    strategy: PartitionStrategy,
    refine_iters: usize,
    buffer: BufferPolicy,
    ablations: Vec<Ablation>,
    verbose: bool,
}

impl JobSpec {
    fn from_request(req: &Json) -> Result<JobSpec, String> {
        let qasm = req
            .get("qasm")
            .and_then(Json::as_str)
            .ok_or("compile request needs a 'qasm' string")?
            .to_string();
        let nodes =
            usize_field(req, "nodes", None)?.ok_or("compile request needs a 'nodes' count")?;
        if nodes == 0 {
            return Err("'nodes' must be positive".to_string());
        }
        let comm_qubits = usize_field(req, "comm_qubits", Some(2))?.unwrap_or(2);
        let topology = match req.get("topology") {
            None | Some(Json::Null) => None,
            Some(t) => Some(t.as_str().ok_or("'topology' must be a string")?.to_string()),
        };
        let strategy = match req.get("placement") {
            None => PartitionStrategy::Oee,
            Some(s) => {
                let name = s.as_str().ok_or("'placement' must be a string")?;
                parse_strategy("--placement", name)?
            }
        };
        let refine_iters = usize_field(req, "refine_iters", Some(3))?.unwrap_or(3);
        let buffer = match req.get("buffer") {
            None => BufferPolicy::OnDemand,
            Some(b) => parse_buffer(b.as_str().ok_or("'buffer' must be a string")?)?,
        };
        let mut ablations = Vec::new();
        if let Some(list) = req.get("ablations") {
            let Json::Array(items) = list else {
                return Err("'ablations' must be an array of strings".to_string());
            };
            for item in items {
                let name = item.as_str().ok_or("'ablations' must be an array of strings")?;
                let ablation =
                    Ablation::parse(name).ok_or_else(|| format!("unknown ablation '{name}'"))?;
                if !ablations.contains(&ablation) {
                    ablations.push(ablation);
                }
            }
        }
        let verbose = req.get("verbose").and_then(Json::as_bool).unwrap_or(false);
        Ok(JobSpec {
            qasm,
            nodes,
            comm_qubits,
            topology,
            strategy,
            refine_iters,
            buffer,
            ablations,
            verbose,
        })
    }

    /// The content-addressed cache key: circuit hash + every flag that
    /// changes compilation output. Label-free, so identical submissions
    /// always coalesce. (The serving path goes through the QASM memo and
    /// [`JobSpec::keyed`]; this parse-first spelling is the test oracle.)
    #[cfg(test)]
    fn cache_key(&self, circuit: &Circuit) -> String {
        self.keyed(&circuit_content_hash(circuit).to_string())
    }

    /// [`JobSpec::cache_key`] with the circuit-hash half already known —
    /// the warm path, where the hash comes from the QASM memo and the
    /// circuit is never parsed.
    fn keyed(&self, circuit_hash: &str) -> String {
        let ablations = if self.ablations.is_empty() {
            "-".to_string()
        } else {
            self.ablations.iter().map(|a| a.name()).collect::<Vec<_>>().join("+")
        };
        format!(
            "{}:{}n:{}c:{}:{}:r{}:{}:{}",
            circuit_hash,
            self.nodes,
            self.comm_qubits,
            self.topology.as_deref().unwrap_or("all-to-all"),
            self.strategy.name(),
            self.refine_iters,
            self.buffer.name(),
            ablations
        )
    }
}

fn usize_field(req: &Json, key: &str, default: Option<usize>) -> Result<Option<usize>, String> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v.as_f64().ok_or_else(|| format!("'{key}' must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("'{key}' must be a non-negative integer"));
            }
            Ok(Some(n as usize))
        }
    }
}

/// A cached compile: the artifact's canonical text plus the pre-rendered
/// response line (minus trailing newline). Caching the rendered line makes
/// hit/miss byte-identity structural rather than hoped-for.
#[derive(Debug)]
struct CacheEntry {
    artifact_text: String,
    response: String,
    compile_ms: f64,
    /// Per-pass wall-clock milliseconds of the cold compile, in pipeline
    /// order — folded into the daemon's per-pass latency log on a miss.
    pass_ms: Vec<(&'static str, f64)>,
}

/// An in-flight compile other submitters of the same key wait on.
struct Flight {
    result: Mutex<Option<Result<Arc<CacheEntry>, String>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { result: Mutex::new(None), done: Condvar::new() }
    }

    fn complete(&self, result: Result<Arc<CacheEntry>, String>) {
        let mut slot = self.result.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<CacheEntry>, String> {
        let mut slot = self.result.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

enum Slot {
    InFlight(Arc<Flight>),
    Ready(Arc<CacheEntry>),
}

enum Lookup {
    /// Ready entry — answer immediately.
    Hit(Arc<CacheEntry>),
    /// Someone else is compiling this key — wait on their flight.
    Coalesce(Arc<Flight>),
    /// This caller owns the compile; everyone else coalesces onto the
    /// returned flight until [`ArtifactCache::complete`] lands.
    Begin(Arc<Flight>),
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<String, Slot>,
    /// Ready keys, least-recently-used first.
    order: Vec<String>,
    hits: usize,
    misses: usize,
    coalesced: usize,
}

/// Bounded single-flight LRU over compiled artifacts.
struct ArtifactCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ArtifactCache {
    fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache { capacity: capacity.max(1), inner: Mutex::new(CacheInner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn begin(&self, key: &str) -> Lookup {
        let mut inner = self.lock();
        match inner.map.get(key) {
            Some(Slot::Ready(entry)) => {
                let entry = Arc::clone(entry);
                inner.hits += 1;
                touch(&mut inner.order, key);
                Lookup::Hit(entry)
            }
            Some(Slot::InFlight(flight)) => {
                let flight = Arc::clone(flight);
                inner.coalesced += 1;
                Lookup::Coalesce(flight)
            }
            None => {
                inner.misses += 1;
                let flight = Arc::new(Flight::new());
                inner.map.insert(key.to_string(), Slot::InFlight(Arc::clone(&flight)));
                Lookup::Begin(flight)
            }
        }
    }

    /// Lands a finished compile: successes become ready (evicting the
    /// least-recently-used entry past capacity), failures clear the slot
    /// so the next submission retries. Either way the flight's waiters
    /// are released.
    fn complete(&self, key: &str, result: Result<CacheEntry, String>) {
        let (flight, result) = {
            let mut inner = self.lock();
            let flight = match inner.map.remove(key) {
                Some(Slot::InFlight(flight)) => Some(flight),
                _ => None,
            };
            let result = result.map(Arc::new);
            if let Ok(entry) = &result {
                inner.map.insert(key.to_string(), Slot::Ready(Arc::clone(entry)));
                touch(&mut inner.order, key);
                while inner.order.len() > self.capacity {
                    let evicted = inner.order.remove(0);
                    inner.map.remove(&evicted);
                }
            }
            (flight, result)
        };
        if let Some(flight) = flight {
            flight.complete(result);
        }
    }

    /// A ready entry, if cached (no hit/miss accounting — used by the
    /// `artifact` op, which is an inspection, not a submission).
    fn get_ready(&self, key: &str) -> Option<Arc<CacheEntry>> {
        match self.lock().map.get(key) {
            Some(Slot::Ready(entry)) => Some(Arc::clone(entry)),
            _ => None,
        }
    }

    fn stats(&self) -> (usize, usize, usize, usize) {
        let inner = self.lock();
        (inner.hits, inner.misses, inner.coalesced, inner.order.len())
    }
}

fn touch(order: &mut Vec<String>, key: &str) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        order.remove(pos);
    }
    order.push(key.to_string());
}

/// 128-bit FNV-1a over raw bytes — the QASM-memo key (same hash family
/// the circuit content hash uses; collisions are negligible at either
/// width).
fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Bounded memo from raw QASM bytes to the circuit content hash.
///
/// Computing a cache key means hashing the *parsed* circuit, and at the
/// 10k-gate tier QASM parsing dominates a cache hit's end-to-end cost.
/// Byte-identical resubmissions — the entire warm path — skip the parse:
/// one linear scan over the request's QASM replaces it. Distinct QASM
/// texts that normalize to the same circuit still converge on the same
/// key through the parse path.
struct HashMemo {
    capacity: usize,
    map: Mutex<HashMap<u128, String>>,
}

impl HashMemo {
    fn new(capacity: usize) -> HashMemo {
        HashMemo { capacity: capacity.max(1), map: Mutex::new(HashMap::new()) }
    }

    fn get(&self, qasm: &str) -> Option<String> {
        let map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        map.get(&fnv128(qasm.as_bytes())).cloned()
    }

    fn insert(&self, qasm: &str, circuit_hash: String) {
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        if map.len() >= self.capacity {
            // Wholesale reset beats LRU bookkeeping here: entries are one
            // small string each, and a refill costs one parse per job.
            map.clear();
        }
        map.insert(fnv128(qasm.as_bytes()), circuit_hash);
    }
}

/// Latency samples and request counts behind the `stats` op.
#[derive(Default)]
struct LatencyLog {
    requests: usize,
    compile_ms: Vec<f64>,
    e2e_ms: Vec<f64>,
    /// Per-pass compile samples in first-seen (pipeline) order; only cold
    /// compiles contribute, so the percentiles profile the pipeline, not
    /// the cache.
    pass_ms: Vec<(&'static str, Vec<f64>)>,
}

impl LatencyLog {
    fn record_passes(&mut self, pass_ms: &[(&'static str, f64)]) {
        for &(name, ms) in pass_ms {
            match self.pass_ms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, samples)) => samples.push(ms),
                None => self.pass_ms.push((name, vec![ms])),
            }
        }
    }
}

/// Everything connection handlers share.
struct ServiceState {
    cache: ArtifactCache,
    hash_memo: HashMemo,
    pool: WorkerPool,
    queue_depth: AtomicUsize,
    shutdown: AtomicBool,
    latency: Mutex<LatencyLog>,
}

impl ServiceState {
    fn latency(&self) -> std::sync::MutexGuard<'_, LatencyLog> {
        self.latency.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Compiles one job to a cache entry. Runs on a pool worker. `parse_ms` is
/// the QASM parse time the connection thread already paid for this job
/// (zero only if the circuit came straight from the hash memo, which
/// cannot happen on the miss path) — prepended to the per-pass timings so
/// the service latency log covers the whole front end.
fn compile_entry(
    circuit: &Circuit,
    spec: &JobSpec,
    key: &str,
    parse_ms: f64,
) -> Result<CacheEntry, String> {
    let started = Instant::now();
    if circuit.num_qubits() < spec.nodes {
        return Err(format!(
            "cannot spread {} qubits over {} nodes",
            circuit.num_qubits(),
            spec.nodes
        ));
    }
    let partition =
        build_partition(circuit, spec.nodes, spec.strategy).map_err(|e| e.to_string())?;
    let hw = build_hardware(&partition, spec.comm_qubits, spec.topology.as_deref())
        .map_err(|e| e.to_string())?;
    let config = placement_config(spec.strategy, spec.refine_iters);
    let (result, placement) = compiler_for(&spec.ablations, spec.buffer)
        .compile_placed(circuit, &partition, &hw, &config)
        .map_err(|e| e.to_string())?;
    let final_partition = result.placement.partition().clone();
    let stats = CircuitStats::of(&result.unrolled, Some(&final_partition));
    let artifact = CompiledArtifact::capture(
        ArtifactConfig {
            key: key.to_string(),
            nodes: spec.nodes,
            comm_qubits: spec.comm_qubits,
            strategy: spec.strategy.name().to_string(),
            refine_iters: spec.refine_iters,
            buffer: spec.buffer,
            ablations: spec.ablations.clone(),
            ..ArtifactConfig::default()
        },
        ArtifactCircuitStats {
            qubits: final_partition.num_qubits(),
            gates: stats.num_gates,
            two_qubit_gates: stats.num_2q,
            remote_cx: stats.num_remote_2q,
        },
        &hw,
        &placement,
        &result,
    );
    let response = format!(
        "{{\"status\":\"ok\",\"key\":{},\"artifact\":{}}}",
        Json::string(key),
        artifact_json(&artifact)
    );
    Ok(CacheEntry {
        artifact_text: artifact.to_text(),
        response,
        compile_ms: started.elapsed().as_secs_f64() * 1e3,
        pass_ms: std::iter::once(("parse", parse_ms))
            .chain(result.passes.iter().map(|r| (r.pass, r.duration.as_secs_f64() * 1e3)))
            .collect(),
    })
}

fn error_response(message: &str) -> String {
    Json::object([("status", Json::string("error")), ("message", Json::string(message))])
        .to_string()
}

/// Handles one `compile` request end to end on the connection thread:
/// parse → hash → cache lookup → (enqueue and) wait → respond.
fn handle_compile(state: &Arc<ServiceState>, req: &Json) -> String {
    let started = Instant::now();
    let spec = match JobSpec::from_request(req) {
        Ok(spec) => spec,
        Err(msg) => return error_response(&msg),
    };
    // Warm fast path: a memoized QASM text yields the content hash (and
    // so the cache key) without parsing the circuit at all.
    let mut parse_ms = 0.0f64;
    let (key, mut circuit) = match state.hash_memo.get(&spec.qasm) {
        Some(hash) => (spec.keyed(&hash), None),
        None => {
            let parse_start = Instant::now();
            let circuit = match from_qasm(&spec.qasm) {
                Ok(c) => c,
                Err(e) => return error_response(&format!("qasm: {e}")),
            };
            parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
            let hash = circuit_content_hash(&circuit).to_string();
            state.hash_memo.insert(&spec.qasm, hash.clone());
            (spec.keyed(&hash), Some(circuit))
        }
    };
    let (outcome, waited) = match state.cache.begin(&key) {
        Lookup::Hit(entry) => ("hit", Ok(entry)),
        Lookup::Coalesce(flight) => ("coalesced", flight.wait()),
        Lookup::Begin(flight) => {
            // Memo hit but cache miss (evicted entry, or the same circuit
            // under new flags): parse now — the compile needs the circuit.
            let circuit = match circuit.take() {
                Some(c) => c,
                None => {
                    let parse_start = Instant::now();
                    match from_qasm(&spec.qasm) {
                        Ok(c) => {
                            parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
                            c
                        }
                        Err(e) => {
                            let msg = format!("qasm: {e}");
                            state.cache.complete(&key, Err(msg.clone()));
                            return error_response(&msg);
                        }
                    }
                }
            };
            state.queue_depth.fetch_add(1, Ordering::SeqCst);
            let job_state = Arc::clone(state);
            let job_spec = spec.clone();
            let job_key = key.clone();
            state.pool.execute(move || {
                // `catch_panic` (not just the pool's own hardening)
                // guarantees the flight completes even if the compile
                // panics — a hung flight would deadlock every coalesced
                // waiter.
                let result = catch_panic(|| compile_entry(&circuit, &job_spec, &job_key, parse_ms))
                    .unwrap_or_else(|msg| Err(format!("compile panicked: {msg}")));
                job_state.cache.complete(&job_key, result);
                job_state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            });
            ("miss", flight.wait())
        }
    };
    let entry = match waited {
        Ok(entry) => entry,
        Err(msg) => return error_response(&msg),
    };
    let e2e_ms = started.elapsed().as_secs_f64() * 1e3;
    {
        let mut log = state.latency();
        if outcome == "miss" {
            log.compile_ms.push(entry.compile_ms);
            log.record_passes(&entry.pass_ms);
        }
        log.e2e_ms.push(e2e_ms);
    }
    if !spec.verbose {
        return entry.response.clone();
    }
    // Per-request service metadata is opt-in and spliced *around* the
    // cached line, so the deterministic payload stays byte-identical.
    let service = Json::object([
        ("cache", Json::string(outcome)),
        ("e2e_ms", Json::number(e2e_ms)),
        ("compile_ms", Json::number(entry.compile_ms)),
        ("queue_depth", Json::number(state.queue_depth.load(Ordering::SeqCst) as f64)),
    ]);
    let base = &entry.response;
    format!("{},\"service\":{}}}", &base[..base.len() - 1], service)
}

/// The `artifact` op: fetch a cached compile's canonical serialized form
/// ([`CompiledArtifact::to_text`]) by cache key — the exchange format a
/// client can persist and later re-load with `CompiledArtifact::from_text`.
fn handle_artifact(state: &ServiceState, req: &Json) -> String {
    let Some(key) = req.get("key").and_then(Json::as_str) else {
        return error_response("artifact request needs a 'key' string");
    };
    match state.cache.get_ready(key) {
        Some(entry) => Json::object([
            ("status", Json::string("ok")),
            ("key", Json::string(key)),
            ("artifact_text", Json::string(entry.artifact_text.clone())),
        ])
        .to_string(),
        None => error_response(&format!("no cached artifact for key '{key}'")),
    }
}

fn handle_stats(state: &ServiceState) -> String {
    let (hits, misses, coalesced, entries) = state.cache.stats();
    let log = state.latency();
    let lookups = hits + misses + coalesced;
    let stats = Json::object([
        ("requests", Json::number(log.requests as f64)),
        ("cache_hits", Json::number(hits as f64)),
        ("cache_misses", Json::number(misses as f64)),
        ("coalesced", Json::number(coalesced as f64)),
        ("hit_rate", Json::number(if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 })),
        ("cache_entries", Json::number(entries as f64)),
        ("queue_depth", Json::number(state.queue_depth.load(Ordering::SeqCst) as f64)),
        ("workers", Json::number(state.pool.workers() as f64)),
        ("compile_ms", latency_json(&log.compile_ms)),
        ("e2e_ms", latency_json(&log.e2e_ms)),
        ("passes", pass_latency_json(&log.pass_ms)),
    ]);
    Json::object([("status", Json::string("ok")), ("stats", stats)]).to_string()
}

/// Handles one request line; the flag reports whether the connection
/// should close (client asked for shutdown).
fn handle_line(state: &Arc<ServiceState>, line: &str) -> (String, bool) {
    let req = match Json::parse(line) {
        Ok(req) => req,
        Err(e) => return (error_response(&format!("malformed request: {e}")), false),
    };
    state.latency().requests += 1;
    match req.get("op").and_then(Json::as_str) {
        Some("compile") => (handle_compile(state, &req), false),
        Some("artifact") => (handle_artifact(state, &req), false),
        Some("stats") => (handle_stats(state), false),
        Some("shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            (
                Json::object([("status", Json::string("ok")), ("shutdown", Json::Bool(true))])
                    .to_string(),
                true,
            )
        }
        Some(other) => (error_response(&format!("unknown op '{other}'")), false),
        None => (error_response("request needs an 'op' field"), false),
    }
}

fn handle_connection(state: Arc<ServiceState>, stream: TcpStream) {
    // A short read timeout lets idle connections notice shutdown without
    // a dedicated waker per connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                let (response, close) = if line.trim().is_empty() {
                    (String::new(), false)
                } else {
                    handle_line(&state, line.trim_end())
                };
                line.clear();
                if !response.is_empty()
                    && (writer.write_all(response.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err())
                {
                    break;
                }
                if close {
                    // The acceptor blocks in `accept`; a self-connect to
                    // the listening address (this stream's local address)
                    // makes it loop once more and observe the flag.
                    if let Ok(addr) = writer.local_addr() {
                        wake_acceptor(addr);
                    }
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeout: partial bytes (if any) stay in `line`; bail out
                // once shutdown lands so the acceptor can join us.
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Binds `127.0.0.1:{args.port}` and serves until a `shutdown` request.
///
/// # Errors
///
/// [`CliError::Io`] when the port cannot be bound or the `--port-file`
/// cannot be written.
pub fn run_serve(args: ServeArgs) -> Result<(), CliError> {
    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| CliError::Io(PathBuf::from(format!("127.0.0.1:{}", args.port)), e))?;
    serve_on(listener, args)
}

/// Serves on an already-bound listener until a `shutdown` request — the
/// in-process entry point the service tests and the latency bench use
/// (bind port 0, read the real address back, serve on a thread).
///
/// # Errors
///
/// [`CliError::Io`] when the local address or `--port-file` is unusable.
pub fn serve_on(listener: TcpListener, args: ServeArgs) -> Result<(), CliError> {
    let addr = listener.local_addr().map_err(|e| CliError::Io(PathBuf::from("<listener>"), e))?;
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| CliError::Io(path.clone(), e))?;
    }
    let state = Arc::new(ServiceState {
        cache: ArtifactCache::new(args.cache_capacity),
        hash_memo: HashMemo::new(args.cache_capacity.saturating_mul(4)),
        pool: WorkerPool::new(args.workers),
        queue_depth: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        latency: Mutex::new(LatencyLog::default()),
    });
    eprintln!(
        "autocomm serve: listening on {addr} ({} worker(s), cache capacity {})",
        state.pool.workers(),
        args.cache_capacity
    );
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        connections.push(std::thread::spawn(move || handle_connection(state, stream)));
    }
    // Drain: every connection either finishes its in-flight response
    // (pool workers stay alive until `state` drops) or notices the
    // shutdown flag at its next read timeout.
    for connection in connections {
        let _ = connection.join();
    }
    if let Some(path) = &args.port_file {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("autocomm serve: shut down cleanly");
    Ok(())
}

/// The `shutdown` op requires waking the acceptor, which blocks in
/// `accept`: the handler sets the flag, and this self-connect makes the
/// acceptor loop run one more time and observe it.
fn wake_acceptor(addr: std::net::SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// Default daemon address of the client modes.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Parsed `autocomm submit` invocation: a compile job shipped to a running
/// daemon instead of compiled in-process.
#[derive(Clone, Debug)]
pub struct SubmitArgs {
    /// Daemon address (`--addr`).
    pub addr: String,
    /// Per-request service metadata in the response (`--verbose`).
    pub verbose: bool,
    /// The compile job itself (same flags as `autocomm compile`).
    pub compile: crate::CompileArgs,
}

impl SubmitArgs {
    /// Parses the arguments following the `submit` subcommand: `--addr`
    /// and `--verbose` here, everything else via [`crate::CompileArgs`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<SubmitArgs, CliError> {
        let mut addr = DEFAULT_ADDR.to_string();
        let mut verbose = false;
        let mut rest = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--addr" => {
                    addr = iter.next().ok_or_else(|| {
                        CliError::Usage(format!("--addr needs a value\n\n{USAGE}"))
                    })?;
                }
                "--verbose" => verbose = true,
                _ => rest.push(arg),
            }
        }
        Ok(SubmitArgs { addr, verbose, compile: crate::CompileArgs::parse(rest)? })
    }

    /// The request line for this job (everything inline; the daemon never
    /// touches the client's filesystem).
    ///
    /// # Errors
    ///
    /// [`CliError::Io`] when the QASM file cannot be read.
    pub fn request_line(&self) -> Result<String, CliError> {
        let c = &self.compile;
        let qasm = std::fs::read_to_string(&c.file).map_err(|e| CliError::Io(c.file.clone(), e))?;
        let mut fields = vec![
            ("op", Json::string("compile")),
            ("qasm", Json::string(qasm)),
            ("nodes", Json::number(c.nodes as f64)),
            ("comm_qubits", Json::number(c.comm_qubits as f64)),
        ];
        if let Some(topology) = &c.topology {
            fields.push(("topology", Json::string(topology.clone())));
        }
        fields.push(("placement", Json::string(c.strategy.name())));
        fields.push(("refine_iters", Json::number(c.refine_iters as f64)));
        fields.push(("buffer", Json::string(c.buffer.name())));
        fields.push(("ablations", Json::array(c.ablations.iter().map(|a| Json::string(a.name())))));
        if self.verbose {
            fields.push(("verbose", Json::Bool(true)));
        }
        Ok(Json::object(fields).to_string())
    }
}

/// Sends one request line to the daemon at `addr` and returns its one
/// response line.
///
/// # Errors
///
/// [`CliError::Compile`] on connection failures or a closed socket.
pub fn roundtrip(addr: &str, request: &str) -> Result<String, CliError> {
    let err = |e: std::fmt::Arguments<'_>| CliError::Compile(format!("service at {addr}: {e}"));
    let mut stream =
        TcpStream::connect(addr).map_err(|e| err(format_args!("cannot connect: {e}")))?;
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| err(format_args!("send failed: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(err(format_args!("connection closed before a response"))),
        Ok(_) => Ok(line.trim_end().to_string()),
        Err(e) => Err(err(format_args!("receive failed: {e}"))),
    }
}

/// Checks a response line's `status`, surfacing service errors as
/// [`CliError::Compile`].
fn expect_ok(response: &str) -> Result<(), CliError> {
    let parsed = Json::parse(response)
        .map_err(|e| CliError::Compile(format!("malformed service response: {e}")))?;
    match parsed.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(()),
        _ => Err(CliError::Compile(
            parsed
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("service reported an error")
                .to_string(),
        )),
    }
}

/// `autocomm submit`: ship one compile job to a running daemon and print
/// its response line.
///
/// # Errors
///
/// I/O and connection failures, plus service-side errors, as [`CliError`].
pub fn run_submit(args: &SubmitArgs) -> Result<(), CliError> {
    let response = roundtrip(&args.addr, &args.request_line()?)?;
    println!("{response}");
    expect_ok(&response)
}

/// `autocomm stats --addr <a>`: print the daemon's aggregate service
/// metrics.
///
/// # Errors
///
/// Connection failures and service-side errors as [`CliError`].
pub fn run_stats(addr: &str) -> Result<(), CliError> {
    let response = roundtrip(addr, "{\"op\":\"stats\"}")?;
    println!("{response}");
    expect_ok(&response)
}

/// `autocomm shutdown --addr <a>`: stop a running daemon.
///
/// # Errors
///
/// Connection failures and service-side errors as [`CliError`].
pub fn run_shutdown(addr: &str) -> Result<(), CliError> {
    let response = roundtrip(addr, "{\"op\":\"shutdown\"}")?;
    println!("{response}");
    expect_ok(&response)
}

/// Parses the trailing `[--addr <a>]` of the `stats`/`shutdown`
/// subcommands.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown flags.
pub fn parse_addr<I: IntoIterator<Item = String>>(args: I) -> Result<String, CliError> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--addr needs a value\n\n{USAGE}")))?;
            }
            other => {
                return Err(CliError::Usage(format!("unknown option '{other}'\n\n{USAGE}")));
            }
        }
    }
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            artifact_text: format!("text-{tag}"),
            response: format!("{{\"status\":\"ok\",\"key\":\"{tag}\"}}"),
            compile_ms: 1.0,
            pass_ms: Vec::new(),
        }
    }

    #[test]
    fn cache_hits_after_complete_and_tracks_stats() {
        let cache = ArtifactCache::new(4);
        let Lookup::Begin(flight) = cache.begin("k1") else {
            panic!("first lookup must begin a compile");
        };
        // A second submission of the in-flight key coalesces.
        assert!(matches!(cache.begin("k1"), Lookup::Coalesce(_)));
        cache.complete("k1", Ok(entry("k1")));
        assert!(flight.wait().is_ok());
        assert!(matches!(cache.begin("k1"), Lookup::Hit(_)));
        let (hits, misses, coalesced, entries) = cache.stats();
        assert_eq!((hits, misses, coalesced, entries), (1, 1, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let cache = ArtifactCache::new(2);
        for key in ["a", "b", "c"] {
            let Lookup::Begin(_) = cache.begin(key) else { panic!("cold key") };
            cache.complete(key, Ok(entry(key)));
        }
        // "a" was least recently used and fell out; "b" and "c" remain.
        assert!(matches!(cache.begin("a"), Lookup::Begin(_)));
        cache.complete("a", Err("abandoned".into()));
        assert!(matches!(cache.begin("c"), Lookup::Hit(_)));
        // Touching "b" last protects it from the next eviction ("c" goes).
        assert!(matches!(cache.begin("b"), Lookup::Hit(_)));
        let Lookup::Begin(_) = cache.begin("d") else { panic!("cold key") };
        cache.complete("d", Ok(entry("d")));
        assert!(matches!(cache.begin("b"), Lookup::Hit(_)));
        assert!(matches!(cache.begin("c"), Lookup::Begin(_)));
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = ArtifactCache::new(4);
        let Lookup::Begin(flight) = cache.begin("bad") else { panic!("cold key") };
        cache.complete("bad", Err("boom".into()));
        assert_eq!(flight.wait().unwrap_err(), "boom");
        // The slot cleared: the next submission retries from scratch.
        assert!(matches!(cache.begin("bad"), Lookup::Begin(_)));
    }

    #[test]
    fn single_flight_releases_concurrent_waiters() {
        let cache = Arc::new(ArtifactCache::new(4));
        let Lookup::Begin(_) = cache.begin("k") else { panic!("cold key") };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.begin("k") {
                    Lookup::Coalesce(flight) => flight.wait().is_ok(),
                    Lookup::Hit(_) => true, // raced past completion
                    Lookup::Begin(_) => false,
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        cache.complete("k", Ok(entry("k")));
        for waiter in waiters {
            assert!(waiter.join().unwrap());
        }
        let (_, misses, _, _) = cache.stats();
        assert_eq!(misses, 1, "one compile for five submissions");
    }

    #[test]
    fn percentiles_are_order_independent() {
        use crate::sections::percentile;
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.99), 3.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn pass_latency_log_keeps_pipeline_order_and_groups_samples() {
        let mut log = LatencyLog::default();
        log.record_passes(&[("orient", 1.0), ("unroll", 2.0), ("schedule", 5.0)]);
        log.record_passes(&[("orient", 3.0), ("unroll", 4.0), ("schedule", 7.0)]);
        let names: Vec<&str> = log.pass_ms.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["orient", "unroll", "schedule"], "first-seen order");
        assert_eq!(log.pass_ms[0].1, [1.0, 3.0]);
        let rendered = pass_latency_json(&log.pass_ms).to_string();
        assert!(rendered.contains("\"schedule\":{\"samples\":2"), "{rendered}");
    }

    #[test]
    fn job_spec_parses_defaults_and_rejects_garbage() {
        let req = Json::parse(r#"{"op":"compile","qasm":"qreg q[4];","nodes":2}"#).unwrap();
        let spec = JobSpec::from_request(&req).unwrap();
        assert_eq!(spec.nodes, 2);
        assert_eq!(spec.comm_qubits, 2);
        assert_eq!(spec.strategy, PartitionStrategy::Oee);
        assert_eq!(spec.refine_iters, 3);
        assert_eq!(spec.buffer, BufferPolicy::OnDemand);
        assert!(spec.ablations.is_empty());
        assert!(!spec.verbose);

        for bad in [
            r#"{"op":"compile","nodes":2}"#,
            r#"{"op":"compile","qasm":"x","nodes":0}"#,
            r#"{"op":"compile","qasm":"x"}"#,
            r#"{"op":"compile","qasm":"x","nodes":2,"placement":"mystery"}"#,
            r#"{"op":"compile","qasm":"x","nodes":2,"ablations":["nope"]}"#,
            r#"{"op":"compile","qasm":"x","nodes":2.5}"#,
        ] {
            let req = Json::parse(bad).unwrap();
            assert!(JobSpec::from_request(&req).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn cache_key_separates_every_flag_and_ignores_labels() {
        let base = Json::parse(r#"{"op":"compile","qasm":"qreg q[4];\ncx q[0], q[2];","nodes":2}"#)
            .unwrap();
        let spec = JobSpec::from_request(&base).unwrap();
        let circuit = from_qasm(&spec.qasm).unwrap();
        let key = spec.cache_key(&circuit);
        // Same job → same key.
        assert_eq!(JobSpec::from_request(&base).unwrap().cache_key(&circuit), key);
        // Any flag change → different key.
        let with_field = |key: &str, value: Json| {
            let mut req = base.clone();
            if let Json::Object(fields) = &mut req {
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some(slot) => slot.1 = value,
                    None => fields.push((key.to_string(), value)),
                }
            }
            req
        };
        for (field, value) in [
            ("nodes", Json::number(4.0)),
            ("comm_qubits", Json::number(3.0)),
            ("topology", Json::string("linear")),
            ("placement", Json::string("topo")),
            ("refine_iters", Json::number(5.0)),
            ("buffer", Json::string("prefetch:4")),
            ("ablations", Json::array([Json::string("cat-only")])),
        ] {
            let other = JobSpec::from_request(&with_field(field, value)).unwrap();
            assert_ne!(other.cache_key(&circuit), key, "{field} ignored by key");
        }
        // A different circuit with the same flags → different key.
        let other = from_qasm("qreg q[4];\ncx q[1], q[2];").unwrap();
        assert_ne!(spec.cache_key(&other), key);
    }

    /// Full in-process service loop: serve on an ephemeral port, submit
    /// the same job twice (cold then warm), check byte-identity and the
    /// hit counter, then shut down cleanly.
    #[test]
    fn service_answers_warm_hits_byte_identically() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let args = ServeArgs { port: 0, workers: 2, cache_capacity: 8, port_file: None };
        let server = std::thread::spawn(move || serve_on(listener, args));

        let request = r#"{"op":"compile","qasm":"qreg q[4];\nh q[0];\ncx q[0], q[2];\ncx q[0], q[3];","nodes":2}"#;
        let cold = roundtrip(&addr, request).unwrap();
        assert!(cold.contains("\"status\":\"ok\""), "{cold}");
        assert!(cold.contains("\"artifact\""), "{cold}");
        let warm = roundtrip(&addr, request).unwrap();
        assert_eq!(warm, cold, "cache hit must be byte-identical");

        let stats = roundtrip(&addr, "{\"op\":\"stats\"}").unwrap();
        let parsed = Json::parse(&stats).unwrap();
        let stat =
            |k: &str| parsed.get("stats").and_then(|s| s.get(k)).and_then(Json::as_f64).unwrap();
        assert_eq!(stat("cache_misses"), 1.0, "{stats}");
        assert_eq!(stat("cache_hits"), 1.0, "{stats}");
        // Per-pass percentiles: one cold compile → one sample per pass,
        // and the cache hit must not add a second.
        let pass_samples = |name: &str| {
            parsed
                .get("stats")
                .and_then(|s| s.get("passes"))
                .and_then(|p| p.get(name))
                .and_then(|p| p.get("samples"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        for pass in ["orient", "unroll", "schedule"] {
            assert_eq!(pass_samples(pass), 1.0, "{stats}");
        }

        // The artifact op returns the canonical text, which round-trips.
        let key =
            Json::parse(&cold).unwrap().get("key").and_then(Json::as_str).unwrap().to_string();
        let fetched = roundtrip(
            &addr,
            &Json::object([("op", Json::string("artifact")), ("key", Json::string(key))])
                .to_string(),
        )
        .unwrap();
        let text = Json::parse(&fetched)
            .unwrap()
            .get("artifact_text")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let artifact = CompiledArtifact::from_text(&text).unwrap();
        assert_eq!(artifact.to_text(), text);

        let bye = roundtrip(&addr, "{\"op\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"shutdown\":true"), "{bye}");
        server.join().unwrap().unwrap();
    }
}
