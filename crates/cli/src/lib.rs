//! Library behind the `autocomm` binary.
//!
//! The CLI drives the whole reproduction end to end: OpenQASM-2 parsing
//! (`dqc-circuit`) → qubit partitioning (block or OEE, `dqc-partition`) →
//! the pass-manager pipeline (`autocomm`) → Table-3-style metrics, as
//! either a human-readable report or JSON. All argument parsing and JSON
//! emission is hand-rolled: the build container is offline, so no `clap`
//! or `serde`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod json;
pub mod pool;
pub mod sections;
pub mod serve;

use std::fmt;
use std::path::PathBuf;

use autocomm::{
    Ablation, AutoComm, AutoCommOptions, BufferPolicy, CompileResult, PlacementConfig,
    PlacementReport,
};
use dqc_circuit::{from_qasm, unroll_circuit, Circuit, CircuitStats, Partition};
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_partition::{oee_partition, InteractionGraph};

use crate::json::Json;

/// Everything that can go wrong while running the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the message is usage-style.
    Usage(String),
    /// The input file could not be read.
    Io(PathBuf, std::io::Error),
    /// The input was not valid OpenQASM-2 or failed to compile.
    Compile(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(path, e) => write!(f, "cannot read {}: {e}", path.display()),
            CliError::Compile(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// How logical qubits are placed onto physical nodes
/// (`--placement block|oee|topo`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous blocks of equal size (deterministic, layout-agnostic),
    /// block `i` on node `i`.
    Block,
    /// The paper's Static Overall Extreme Exchange refinement, block `i`
    /// on node `i` (the default; bit-identical to the pre-placement
    /// pipeline).
    Oee,
    /// OEE plus the topology- and traffic-aware iterative placement driver:
    /// re-weights the interaction graph with measured communication counts
    /// and optimizes the block→node map until the hop-weighted EPR cost
    /// stops improving (bounded by `--refine-iters`).
    Topo,
}

impl PartitionStrategy {
    /// The kebab-case flag value.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Block => "block",
            PartitionStrategy::Oee => "oee",
            PartitionStrategy::Topo => "topo",
        }
    }
}

/// Parsed `autocomm compile` invocation.
#[derive(Clone, Debug)]
pub struct CompileArgs {
    /// The OpenQASM-2 input file.
    pub file: PathBuf,
    /// Number of hardware nodes.
    pub nodes: usize,
    /// Communication qubits per node (the paper's budget is 2).
    pub comm_qubits: usize,
    /// Interconnect topology spec: a name (`all-to-all`, `linear`, `ring`,
    /// `star`, `grid`, `grid:RxC`) or a topology file path. `None` =
    /// all-to-all, the paper's model.
    pub topology: Option<String>,
    /// Placement strategy (default: OEE, as in the paper).
    pub strategy: PartitionStrategy,
    /// Re-place + recompile rounds for `--placement topo` (default 3).
    pub refine_iters: usize,
    /// EPR buffering policy for the scheduler (`--buffer`; default
    /// on-demand, the bit-identical legacy engine).
    pub buffer: BufferPolicy,
    /// Ablations applied to the full optimization set.
    pub ablations: Vec<Ablation>,
    /// Emit JSON instead of the human-readable report.
    pub json: bool,
    /// Add a per-pass wall-clock `"timings"` object to the JSON report
    /// (`--timings`) — the profiling hook the benches and CI gates reuse.
    pub timings: bool,
}

/// The usage text printed by `autocomm help` and on usage errors.
pub const USAGE: &str = "\
autocomm — communication-optimizing compiler for distributed quantum programs
          (reproduction of AutoComm, Wu et al., MICRO 2022)

USAGE:
    autocomm compile <file.qasm> --nodes <N> [OPTIONS]
    autocomm batch <dir> --nodes <N> [OPTIONS]
    autocomm batch --suite --nodes <N> [OPTIONS]
    autocomm serve [SERVE OPTIONS]
    autocomm submit <file.qasm> --nodes <N> [--addr <A>] [--verbose] [OPTIONS]
    autocomm stats [--addr <A>]
    autocomm shutdown [--addr <A>]
    autocomm help

OPTIONS:
    --nodes <N>          number of hardware nodes (required)
    --comm-qubits <K>    communication qubits per node [default: 2]
    --topology <T>       interconnect topology: all-to-all, linear, ring,
                         star, grid, grid:RxC, or a topology file path
                         [default: all-to-all]. Sparse topologies route
                         non-adjacent communication through entanglement
                         swapping and serialize contended links
    --placement <S>      qubit placement: 'oee' (OEE partition, block i on
                         node i — the paper's setup), 'block' (contiguous
                         blocks, identity map), or 'topo' (OEE plus
                         topology- and traffic-aware block-to-node
                         placement with iterative refinement)
                         [default: oee]
    --refine-iters <N>   max re-place + recompile rounds for
                         --placement topo [default: 3]
    --buffer <B>         EPR buffering policy for the scheduler:
                         'on-demand' (generate each pair at burst time —
                         the legacy engine), 'prefetch:N' (generate up to
                         N bursts ahead during computation slack, buffer
                         capacity permitting; 'prefetch' = prefetch:4), or
                         'greedy' (unbounded lookahead)
                         [default: on-demand]. Buffered schedules fall
                         back to on-demand when they do not strictly
                         improve the makespan
    --partition <S>      legacy alias of --placement ('oee' or 'block')
    --ablation <A>       disable one optimization; repeatable and
                         comma-separable. One of: no-commute, cat-only,
                         plain-greedy, no-orient (paper Fig. 17)
    --json               emit machine-readable JSON on stdout
    --timings            add a per-pass wall-clock \"timings\" object (pass
                         name -> milliseconds) to the JSON report; batch
                         reports sum each pass across every program

BATCH OPTIONS:
    <dir>                compile every .qasm file in the directory
    --suite              compile the built-in workload smoke suite instead
    --jobs <J>           worker threads [default: available cores, max 8];
                         metrics are identical for every job count

SERVE OPTIONS:
    --port <P>           TCP port on 127.0.0.1 [default: 7878; 0 = pick an
                         ephemeral port]
    --jobs <J>           compile worker threads [default: available cores,
                         max 8]
    --cache-cap <N>      max compiled artifacts kept in the LRU cache
                         [default: 256]
    --port-file <path>   write the bound port here once listening (how
                         scripts find an ephemeral port); removed on
                         clean shutdown

SERVICE CLIENTS:
    submit               compile via a running daemon: same options as
                         'compile', plus --addr <host:port>
                         [default: 127.0.0.1:7878] and --verbose (adds a
                         per-request \"service\" object: cache hit/miss,
                         latency, queue depth). Repeat submissions of an
                         identical job are answered from the daemon's
                         content-addressed artifact cache, byte-identical
                         to the cold compile
    stats                print the daemon's aggregate service metrics
                         (cache hit rate, coalesced compiles, p50/p99
                         latency overall and per pipeline pass)
    shutdown             stop the daemon cleanly
";

impl CompileArgs {
    /// Parses the arguments following the `compile` subcommand.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown flags, malformed values, or a
    /// missing file/`--nodes`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<CompileArgs, CliError> {
        let mut file = None;
        let mut nodes = None;
        let mut comm_qubits = 2usize;
        let mut topology = None;
        let mut strategy = PartitionStrategy::Oee;
        let mut refine_iters = 3usize;
        let mut buffer = BufferPolicy::OnDemand;
        let mut ablations = Vec::new();
        let mut json = false;
        let mut timings = false;

        let usage = |msg: String| CliError::Usage(format!("{msg}\n\n{USAGE}"));
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for =
                |flag: &str| iter.next().ok_or_else(|| usage(format!("{flag} needs a value")));
            match arg.as_str() {
                "--buffer" => {
                    let v = value_for("--buffer")?;
                    buffer = parse_buffer(&v).map_err(usage)?;
                }
                "--nodes" => {
                    let v = value_for("--nodes")?;
                    nodes = Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        usage(format!("--nodes: '{v}' is not a positive integer"))
                    })?);
                }
                "--comm-qubits" => {
                    let v = value_for("--comm-qubits")?;
                    comm_qubits = v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        usage(format!("--comm-qubits: '{v}' is not a positive integer"))
                    })?;
                }
                "--topology" => topology = Some(value_for("--topology")?),
                "--placement" | "--partition" => {
                    let flag = arg.as_str();
                    let v = value_for(flag)?;
                    strategy = parse_strategy(flag, &v).map_err(usage)?;
                }
                "--refine-iters" => {
                    let v = value_for("--refine-iters")?;
                    refine_iters = v.parse::<usize>().map_err(|_| {
                        usage(format!("--refine-iters: '{v}' is not a non-negative integer"))
                    })?;
                }
                "--ablation" => {
                    let v = value_for("--ablation")?;
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        let ablation = Ablation::parse(name).ok_or_else(|| {
                            let known: Vec<&str> =
                                Ablation::all().iter().map(|a| a.name()).collect();
                            usage(format!(
                                "--ablation: unknown ablation '{name}' (expected one of {})",
                                known.join(", ")
                            ))
                        })?;
                        if !ablations.contains(&ablation) {
                            ablations.push(ablation);
                        }
                    }
                }
                "--json" => json = true,
                "--timings" => timings = true,
                flag if flag.starts_with('-') => {
                    return Err(usage(format!("unknown option '{flag}'")));
                }
                positional => {
                    if file.replace(PathBuf::from(positional)).is_some() {
                        return Err(usage(format!(
                            "unexpected extra argument '{positional}' (one input file expected)"
                        )));
                    }
                }
            }
        }

        Ok(CompileArgs {
            file: file.ok_or_else(|| usage("missing <file.qasm> input".into()))?,
            nodes: nodes.ok_or_else(|| usage("missing required --nodes <N>".into()))?,
            comm_qubits,
            topology,
            strategy,
            refine_iters,
            buffer,
            ablations,
            json,
            timings,
        })
    }
}

/// Parses a `--buffer` value (`on-demand`, `prefetch`, `prefetch:N`,
/// `greedy`).
pub(crate) fn parse_buffer(value: &str) -> Result<BufferPolicy, String> {
    BufferPolicy::parse(value).ok_or_else(|| {
        format!(
            "--buffer: unknown policy '{value}' (expected 'on-demand', 'prefetch', \
             'prefetch:N' with N >= 1, or 'greedy')"
        )
    })
}

/// The compiler for a flag set: ablations applied to the full optimization
/// set, then the buffering policy threaded into the scheduler (so
/// `--ablation plain-greedy --buffer prefetch:4` composes).
pub(crate) fn compiler_for(ablations: &[Ablation], buffer: BufferPolicy) -> AutoComm {
    let mut options =
        ablations.iter().fold(AutoCommOptions::default(), |opts, &a| opts.with_ablation(a));
    options.schedule.buffer = buffer;
    AutoComm::with_options(options)
}

/// Parses a `--placement` (block/oee/topo) or legacy `--partition`
/// (block/oee) value.
pub(crate) fn parse_strategy(flag: &str, value: &str) -> Result<PartitionStrategy, String> {
    match (flag, value) {
        (_, "block") => Ok(PartitionStrategy::Block),
        (_, "oee") => Ok(PartitionStrategy::Oee),
        ("--placement", "topo") => Ok(PartitionStrategy::Topo),
        ("--placement", other) => Err(format!(
            "--placement: unknown strategy '{other}' (expected 'block', 'oee', or 'topo')"
        )),
        (_, other) => {
            Err(format!("--partition: unknown strategy '{other}' (expected 'oee' or 'block')"))
        }
    }
}

/// Resolves a `--topology` spec: a known name (`linear`, `grid:2x3`, …) or
/// a path to a topology file; `None` means the paper's all-to-all.
///
/// # Errors
///
/// [`CliError::Usage`] for unknown names or node-count mismatches;
/// [`CliError::Io`] when a file path cannot be read.
pub fn resolve_topology(spec: Option<&str>, nodes: usize) -> Result<NetworkTopology, CliError> {
    let Some(spec) = spec else {
        return Ok(NetworkTopology::all_to_all(nodes));
    };
    let path = std::path::Path::new(spec);
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.into(), e))?;
        let topology = NetworkTopology::from_text(&text)
            .map_err(|e| CliError::Usage(format!("--topology {spec}: {e}\n\n{USAGE}")))?;
        if topology.num_nodes() != nodes {
            return Err(CliError::Usage(format!(
                "--topology {spec}: file covers {} node(s) but --nodes is {nodes}\n\n{USAGE}",
                topology.num_nodes()
            )));
        }
        Ok(topology)
    } else {
        NetworkTopology::parse_spec(spec, nodes)
            .map_err(|e| CliError::Usage(format!("--topology: {e}\n\n{USAGE}")))
    }
}

/// Builds the hardware model for parsed CLI arguments, surfacing
/// validation failures (zero comm qubits, disconnected or mismatched
/// topologies, missing relay budget) as usage errors.
pub(crate) fn build_hardware(
    partition: &Partition,
    comm_qubits: usize,
    topology_spec: Option<&str>,
) -> Result<HardwareSpec, CliError> {
    let topology = resolve_topology(topology_spec, partition.num_nodes())?;
    HardwareSpec::for_partition(partition)
        .with_comm_qubits(comm_qubits)
        .and_then(|hw| hw.with_topology(topology))
        .map_err(|e| CliError::Usage(format!("invalid hardware configuration: {e}\n\n{USAGE}")))
}

/// The compiled program plus everything the report needs.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// The parsed arguments.
    pub args: CompileArgs,
    /// Unrolled-circuit statistics under the chosen partition.
    pub stats: CircuitStats,
    /// The partition the program was compiled against (the *final* one for
    /// `--placement topo`, which may re-refine it).
    pub partition: Partition,
    /// The hardware model (comm-qubit budget + resolved topology).
    pub hardware: HardwareSpec,
    /// What the placement driver did: iterations, cut weights, and the
    /// final block→node map (trivial for block/oee strategies).
    pub placement: PlacementReport,
    /// The full pipeline result (metrics, schedule, per-pass reports).
    pub result: CompileResult,
}

/// Parses, partitions, places, and compiles `args.file` end to end.
///
/// Every strategy funnels through the placement driver: `block` and `oee`
/// run it with zero refinement rounds (bit-identical to the historical
/// pipeline), `topo` iterates up to `--refine-iters` times.
///
/// # Errors
///
/// Surfaces I/O, QASM, partitioning, and pipeline failures as [`CliError`].
pub fn compile(args: CompileArgs) -> Result<CompileReport, CliError> {
    let text =
        std::fs::read_to_string(&args.file).map_err(|e| CliError::Io(args.file.clone(), e))?;
    let parse_start = std::time::Instant::now();
    let circuit =
        from_qasm(&text).map_err(|e| CliError::Compile(format!("{}: {e}", args.file.display())))?;
    let parse_report = autocomm::PassReport {
        pass: "parse",
        duration: parse_start.elapsed(),
        metric: Some(format!("{} gates from {} bytes of QASM", circuit.len(), text.len())),
    };
    if circuit.num_qubits() < args.nodes {
        return Err(CliError::Compile(format!(
            "cannot spread {} qubits over {} nodes",
            circuit.num_qubits(),
            args.nodes
        )));
    }
    let partition = build_partition(&circuit, args.nodes, args.strategy)?;
    let hw = build_hardware(&partition, args.comm_qubits, args.topology.as_deref())?;
    let config = placement_config(args.strategy, args.refine_iters);
    let (mut result, placement) = compiler_for(&args.ablations, args.buffer)
        .compile_placed(&circuit, &partition, &hw, &config)
        .map_err(|e| CliError::Compile(e.to_string()))?;
    // The pipeline only sees the parsed circuit; the front-end parse time
    // is the CLI's to report, prepended so `--timings` and the passes
    // array cover the whole run.
    result.passes.insert(0, parse_report);
    let partition = result.placement.partition().clone();
    let stats = CircuitStats::of(&result.unrolled, Some(&partition));
    Ok(CompileReport { args, stats, partition, hardware: hw, placement, result })
}

/// The driver bounds implied by the CLI strategy: only `topo` refines.
pub(crate) fn placement_config(
    strategy: PartitionStrategy,
    refine_iters: usize,
) -> PlacementConfig {
    PlacementConfig {
        refine_iters: match strategy {
            PartitionStrategy::Topo => refine_iters,
            _ => 0,
        },
        ..Default::default()
    }
}

pub(crate) fn build_partition(
    circuit: &Circuit,
    nodes: usize,
    strategy: PartitionStrategy,
) -> Result<Partition, CliError> {
    match strategy {
        PartitionStrategy::Block => Partition::block(circuit.num_qubits(), nodes)
            .map_err(|e| CliError::Compile(e.to_string())),
        PartitionStrategy::Oee | PartitionStrategy::Topo => {
            let unrolled = unroll_circuit(circuit).map_err(|e| CliError::Compile(e.to_string()))?;
            let graph = InteractionGraph::from_circuit(&unrolled);
            oee_partition(&graph, nodes).map_err(|e| CliError::Compile(e.to_string()))
        }
    }
}

impl CompileReport {
    /// The machine-readable form emitted under `--json`.
    pub fn to_json(&self) -> Json {
        let m = &self.result.metrics;
        let s = &self.result.schedule;
        let topology = self.hardware.topology();
        // `--timings` adds a flat pass-name -> milliseconds object next to
        // the structural "passes" array, so profiling consumers (the bench
        // harness, the CI perf gate) can key on pass names directly. The
        // placement optimizer's work counters ride along under
        // "placement_work" — wall-clock numbers alone can't distinguish a
        // warm cache hit from a fast cold scan.
        let timings = self.args.timings.then(|| {
            (
                "timings",
                Json::object(
                    self.result
                        .passes
                        .iter()
                        .map(|p| (p.pass, Json::number(p.duration.as_secs_f64() * 1e3)))
                        .chain([(
                            "placement_work",
                            sections::placement_work_json(&self.placement.work),
                        )]),
                ),
            )
        });
        Json::object(
            [
                ("file", Json::string(self.args.file.display().to_string())),
                ("nodes", Json::number(self.args.nodes as f64)),
                ("comm_qubits", Json::number(self.args.comm_qubits as f64)),
                (
                    "topology",
                    sections::topology_json(
                        topology.name(),
                        topology.links().len(),
                        topology.diameter(),
                    ),
                ),
                ("partition", Json::string(self.args.strategy.name())),
                ("placement", sections::placement_json(self.args.strategy.name(), &self.placement)),
                ("ablations", sections::ablations_json(&self.args.ablations)),
                (
                    "circuit",
                    sections::circuit_json(
                        self.partition.num_qubits(),
                        self.stats.num_gates,
                        self.stats.num_2q,
                        self.stats.num_remote_2q,
                    ),
                ),
                (
                    "ir",
                    sections::ir_json(
                        self.result.ir.len(),
                        self.result.ir.unique_gates(),
                        self.result.ir.dag_edges_if_built().unwrap_or(0),
                        self.result.ir.ranked_pairs().len(),
                    ),
                ),
                ("metrics", sections::metrics_json(m)),
                ("buffering", sections::buffering_json(&s.buffering)),
                (
                    "schedule",
                    sections::schedule_json(
                        s.makespan,
                        s.epr_pairs,
                        s.swaps,
                        s.fusion_savings,
                        &s.link_traffic,
                    ),
                ),
                (
                    "passes",
                    Json::array(self.result.passes.iter().map(|p| {
                        Json::object([
                            ("pass", Json::string(p.pass)),
                            ("micros", Json::number(p.duration.as_secs_f64() * 1e6)),
                            ("metric", p.metric.clone().map_or(Json::Null, Json::string)),
                        ])
                    })),
                ),
            ]
            .into_iter()
            .chain(timings),
        )
    }

    /// The human-readable report.
    pub fn to_text(&self) -> String {
        let m = &self.result.metrics;
        let s = &self.result.schedule;
        let mut out = String::new();
        let line = |out: &mut String, k: &str, v: String| {
            out.push_str(&format!("  {k:<22} {v}\n"));
        };
        out.push_str(&format!("compiled {}\n", self.args.file.display()));
        line(
            &mut out,
            "qubits / nodes",
            format!("{} / {}", self.partition.num_qubits(), self.args.nodes),
        );
        line(&mut out, "topology", self.hardware.topology().to_string());
        line(&mut out, "placement", self.args.strategy.name().to_string());
        if self.args.strategy == PartitionStrategy::Topo {
            let map: Vec<String> =
                self.placement.node_map.iter().map(|n| n.index().to_string()).collect();
            line(
                &mut out,
                "block→node map",
                format!("[{}] after {} round(s)", map.join(" "), self.placement.iterations),
            );
            line(
                &mut out,
                "placement EPR cost",
                format!(
                    "{} → {} (cut {}, weighted {})",
                    self.placement.initial_epr_cost,
                    self.placement.final_epr_cost,
                    self.placement.cut_weight,
                    self.placement.weighted_cost
                ),
            );
            let w = &self.placement.work;
            line(
                &mut out,
                "placement work",
                format!(
                    "{} exchange(s), {} scanned, {} cache hits, {} round(s) skipped{}",
                    w.oee_exchanges + w.place_exchanges,
                    w.oee_scanned,
                    w.oee_cache_hits,
                    w.rounds_skipped,
                    if w.saturated { ", SATURATED" } else { "" }
                ),
            );
        }
        line(&mut out, "gates (unrolled)", self.stats.num_gates.to_string());
        line(&mut out, "remote CX", self.stats.num_remote_2q.to_string());
        if !self.args.ablations.is_empty() {
            let names: Vec<&str> = self.args.ablations.iter().map(|a| a.name()).collect();
            line(&mut out, "ablations", names.join(", "));
        }
        out.push_str("metrics (paper Table 3)\n");
        line(&mut out, "Tot Comm", m.total_comms.to_string());
        line(&mut out, "TP-Comm", m.tp_comms.to_string());
        line(&mut out, "Peak # REM CX", format!("{:.2}", m.peak_rem_cx));
        line(&mut out, "improv. factor", format!("{:.2}x", m.improvement_factor()));
        line(&mut out, "makespan (CX units)", format!("{:.1}", s.makespan));
        line(&mut out, "EPR pairs", s.epr_pairs.to_string());
        if self.args.buffer.is_buffered() {
            line(
                &mut out,
                "EPR buffering",
                format!(
                    "{} ({}/{} prefetch hits, mean wait {:.1}, mean age {:.1}{})",
                    s.buffering.policy.name(),
                    s.buffering.prefetch_hits,
                    s.buffering.requests,
                    s.buffering.mean_epr_wait,
                    s.buffering.mean_pair_age,
                    if s.buffering.fell_back { ", fell back to on-demand" } else { "" }
                ),
            );
        }
        if s.swaps > 0 {
            line(&mut out, "ent. swaps", s.swaps.to_string());
        }
        if !s.link_traffic.is_empty() && self.hardware.topology().name() != "all-to-all" {
            let links: Vec<String> = s
                .link_traffic
                .iter()
                .map(|&(a, b, pairs)| format!("{}-{}:{pairs}", a.index(), b.index()))
                .collect();
            line(&mut out, "link EPR traffic", links.join(" "));
        }
        out.push_str("passes\n");
        for p in &self.result.passes {
            let metric = p.metric.as_deref().unwrap_or("-");
            out.push_str(&format!(
                "  {:<10} {:>9.1} us  {metric}\n",
                p.pass,
                p.duration.as_secs_f64() * 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CompileArgs, CliError> {
        CompileArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_a_full_command_line() {
        let args = parse(&[
            "bv.qasm",
            "--nodes",
            "4",
            "--comm-qubits",
            "3",
            "--topology",
            "linear",
            "--partition",
            "block",
            "--ablation",
            "no-commute,cat-only",
            "--ablation",
            "plain-greedy",
            "--json",
            "--timings",
        ])
        .unwrap();
        assert_eq!(args.file, PathBuf::from("bv.qasm"));
        assert_eq!(args.nodes, 4);
        assert_eq!(args.comm_qubits, 3);
        assert_eq!(args.topology.as_deref(), Some("linear"));
        assert_eq!(args.strategy, PartitionStrategy::Block);
        assert_eq!(
            args.ablations,
            vec![Ablation::NoCommute, Ablation::CatOnly, Ablation::PlainGreedy]
        );
        assert!(args.json);
        assert!(args.timings);
    }

    #[test]
    fn defaults_match_the_paper() {
        let args = parse(&["c.qasm", "--nodes", "2"]).unwrap();
        assert_eq!(args.comm_qubits, 2);
        assert_eq!(args.topology, None);
        assert_eq!(args.strategy, PartitionStrategy::Oee);
        assert_eq!(args.refine_iters, 3);
        assert!(args.ablations.is_empty());
        assert!(!args.json);
        assert!(!args.timings);
    }

    #[test]
    fn placement_flag_parses_all_strategies() {
        for (value, expect) in [
            ("block", PartitionStrategy::Block),
            ("oee", PartitionStrategy::Oee),
            ("topo", PartitionStrategy::Topo),
        ] {
            let args = parse(&["c.qasm", "--nodes", "2", "--placement", value]).unwrap();
            assert_eq!(args.strategy, expect, "{value}");
            assert_eq!(args.strategy.name(), value);
        }
        let args = parse(&["c.qasm", "--nodes", "2", "--placement", "topo", "--refine-iters", "7"])
            .unwrap();
        assert_eq!(args.refine_iters, 7);
        // The legacy --partition alias keeps its two historical values and
        // does not grow 'topo'.
        let args = parse(&["c.qasm", "--nodes", "2", "--partition", "block"]).unwrap();
        assert_eq!(args.strategy, PartitionStrategy::Block);
        assert!(matches!(
            parse(&["c.qasm", "--nodes", "2", "--partition", "topo"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["c.qasm", "--nodes", "2", "--placement", "spectral"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["c.qasm", "--nodes", "2", "--refine-iters", "many"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn topology_specs_resolve_by_name_and_file() {
        assert_eq!(resolve_topology(None, 4).unwrap().name(), "all-to-all");
        assert_eq!(resolve_topology(Some("ring"), 4).unwrap().diameter(), Some(2));
        assert!(matches!(resolve_topology(Some("moebius"), 4), Err(CliError::Usage(_))));

        let path = std::env::temp_dir().join(format!("autocomm-topo-{}.txt", std::process::id()));
        std::fs::write(&path, "nodes 3\nlink 0 1\nlink 1 2\n").unwrap();
        let spec = path.display().to_string();
        let t = resolve_topology(Some(&spec), 3).unwrap();
        assert_eq!(t.diameter(), Some(2));
        // Node-count mismatch between file and --nodes is a usage error.
        assert!(matches!(resolve_topology(Some(&spec), 4), Err(CliError::Usage(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_hardware_is_a_usage_error() {
        // One comm qubit cannot relay on a sparse topology (the satellite
        // plumbing for Result-returning HardwareSpec validation).
        let p = Partition::block(6, 3).unwrap();
        let err = build_hardware(&p, 1, Some("linear")).unwrap_err();
        match err {
            CliError::Usage(msg) => assert!(msg.contains("communication qubits"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
        assert!(build_hardware(&p, 1, None).is_ok(), "all-to-all works with one comm qubit");
    }

    #[test]
    fn rejects_bad_usage() {
        for bad in [
            &["--nodes", "2"][..],                     // no file
            &["c.qasm"][..],                           // no nodes
            &["c.qasm", "--nodes", "0"][..],           // zero nodes
            &["c.qasm", "--nodes", "x"][..],           // non-numeric
            &["c.qasm", "--nodes", "2", "--frob"][..], // unknown flag
            &["a.qasm", "b.qasm", "--nodes", "2"][..], // two files
            &["c.qasm", "--nodes", "2", "--ablation", "bogus"][..],
            &["c.qasm", "--nodes", "2", "--partition", "spectral"][..],
        ] {
            assert!(matches!(parse(bad), Err(CliError::Usage(_))), "accepted: {bad:?}");
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let args = parse(&["/nonexistent/x.qasm", "--nodes", "2"]).unwrap();
        assert!(matches!(compile(args), Err(CliError::Io(_, _))));
    }
}
