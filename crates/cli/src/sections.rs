//! Shared JSON report sections.
//!
//! `autocomm compile --json` and the compile service's artifact responses
//! must agree **byte for byte** on every deterministic section (topology,
//! placement, circuit, ir, metrics, buffering, schedule): the service's
//! acceptance bar is that a cache hit returns exactly the bytes a cold
//! compile would have produced, and the easiest way to keep two renderers
//! identical is to have only one. Each section here is the single builder
//! both paths call.

use autocomm::{
    Ablation, BufferingReport, CommMetrics, CompiledArtifact, PlacementReport, PlacementWork,
};
use dqc_circuit::NodeId;

use crate::json::Json;

/// The `"topology"` object: name, link count, diameter.
pub fn topology_json(name: &str, links: usize, diameter: Option<usize>) -> Json {
    Json::object([
        ("name", Json::string(name)),
        ("links", Json::number(links as f64)),
        ("diameter", diameter.map_or(Json::Null, |d| Json::number(d as f64))),
    ])
}

/// The `"placement"` object: strategy echo plus the driver's report and
/// its optimizer work counters.
pub fn placement_json(strategy: &str, p: &PlacementReport) -> Json {
    let w = &p.work;
    Json::object([
        ("strategy", Json::string(strategy)),
        ("iterations", Json::number(p.iterations as f64)),
        ("cut_weight", Json::number(p.cut_weight as f64)),
        ("weighted_cost", Json::number(p.weighted_cost as f64)),
        ("initial_epr_cost", Json::number(p.initial_epr_cost as f64)),
        ("final_epr_cost", Json::number(p.final_epr_cost as f64)),
        ("node_map", Json::array(p.node_map.iter().map(|n| Json::number(n.index() as f64)))),
        ("work", placement_work_json(w)),
    ])
}

/// The `"work"` object nested in `"placement"` (and echoed under
/// `--timings`): what the placement optimizer actually did.
pub fn placement_work_json(w: &PlacementWork) -> Json {
    Json::object([
        ("oee_exchanges", Json::number(w.oee_exchanges as f64)),
        ("oee_scanned", Json::number(w.oee_scanned as f64)),
        ("oee_cache_hits", Json::number(w.oee_cache_hits as f64)),
        ("place_exchanges", Json::number(w.place_exchanges as f64)),
        ("rounds_skipped", Json::number(w.rounds_skipped as f64)),
        ("saturated", Json::Bool(w.saturated)),
    ])
}

/// The `"ablations"` array, in flag order.
pub fn ablations_json(ablations: &[Ablation]) -> Json {
    Json::array(ablations.iter().map(|a| Json::string(a.name())))
}

/// The `"circuit"` object: unrolled-circuit statistics.
pub fn circuit_json(qubits: usize, gates: usize, two_qubit: usize, remote_cx: usize) -> Json {
    Json::object([
        ("qubits", Json::number(qubits as f64)),
        ("gates", Json::number(gates as f64)),
        ("two_qubit_gates", Json::number(two_qubit as f64)),
        ("remote_cx", Json::number(remote_cx as f64)),
    ])
}

/// The `"ir"` object: indexed-IR statistics.
pub fn ir_json(gates: usize, unique_gates: usize, dag_edges: usize, burst_pairs: usize) -> Json {
    Json::object([
        ("gates", Json::number(gates as f64)),
        ("unique_gates", Json::number(unique_gates as f64)),
        ("dag_edges", Json::number(dag_edges as f64)),
        ("burst_pairs", Json::number(burst_pairs as f64)),
    ])
}

/// The `"metrics"` object: the paper's Table-3 quantities.
pub fn metrics_json(m: &CommMetrics) -> Json {
    Json::object([
        ("total_comms", Json::number(m.total_comms as f64)),
        ("tp_comms", Json::number(m.tp_comms as f64)),
        ("cat_comms", Json::number((m.total_comms - m.tp_comms) as f64)),
        ("total_rem_cx", Json::number(m.total_rem_cx as f64)),
        ("peak_rem_cx", Json::number(m.peak_rem_cx)),
        ("num_blocks", Json::number(m.num_blocks as f64)),
        ("epr_cost", Json::number(m.total_epr_cost as f64)),
        ("improvement_factor", Json::number(m.improvement_factor())),
    ])
}

/// The `"buffering"` object: what the EPR-buffering engine did.
pub fn buffering_json(b: &BufferingReport) -> Json {
    Json::object([
        ("policy", Json::string(b.policy.name())),
        ("requests", Json::number(b.requests as f64)),
        ("prefetch_hits", Json::number(b.prefetch_hits as f64)),
        ("prefetch_misses", Json::number(b.prefetch_misses as f64)),
        ("hit_rate", Json::number(b.hit_rate)),
        ("mean_epr_wait", Json::number(b.mean_epr_wait)),
        ("mean_pair_age", Json::number(b.mean_pair_age)),
        ("occupancy_hist", Json::array(b.occupancy_hist.iter().map(|&c| Json::number(c as f64)))),
        ("fell_back", Json::Bool(b.fell_back)),
    ])
}

/// The `"schedule"` object: makespan, EPR accounting, per-link traffic.
pub fn schedule_json(
    makespan: f64,
    epr_pairs: usize,
    swaps: usize,
    fusion_savings: usize,
    link_traffic: &[(NodeId, NodeId, usize)],
) -> Json {
    Json::object([
        ("makespan", Json::number(makespan)),
        ("epr_pairs", Json::number(epr_pairs as f64)),
        ("swaps", Json::number(swaps as f64)),
        ("fusion_savings", Json::number(fusion_savings as f64)),
        (
            "link_traffic",
            Json::array(link_traffic.iter().map(|&(a, b, pairs)| {
                Json::object([
                    ("a", Json::number(a.index() as f64)),
                    ("b", Json::number(b.index() as f64)),
                    ("epr_pairs", Json::number(pairs as f64)),
                ])
            })),
        ),
    ])
}

/// Nearest-rank percentile over an unsorted sample set (copies and sorts;
/// the daemon's sample vectors stay small enough that this beats keeping
/// them sorted on every push).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A `{samples, p50, p99}` latency summary — the shape every timing field
/// of the `stats` op uses, aggregate and per-pass alike.
pub fn latency_json(samples: &[f64]) -> Json {
    Json::object([
        ("samples", Json::number(samples.len() as f64)),
        ("p50", Json::number(percentile(samples, 0.50))),
        ("p99", Json::number(percentile(samples, 0.99))),
    ])
}

/// The `"passes"` object of the `stats` op: one latency summary per
/// pipeline pass, in first-seen (pipeline) order.
pub fn pass_latency_json(passes: &[(&'static str, Vec<f64>)]) -> Json {
    Json::object(passes.iter().map(|(name, samples)| (*name, latency_json(samples))))
}

/// Renders a [`CompiledArtifact`] as the deterministic subset of the
/// `compile --json` report: the same sections, built by the same section
/// builders, minus `file`/`passes`/`timings` (whose wall-clock content
/// differs run to run and would break cache-hit byte-identity).
pub fn artifact_json(a: &CompiledArtifact) -> Json {
    let c = &a.config;
    Json::object([
        ("nodes", Json::number(c.nodes as f64)),
        ("comm_qubits", Json::number(c.comm_qubits as f64)),
        ("topology", topology_json(&c.topology, c.links, c.diameter)),
        ("partition", Json::string(c.strategy.clone())),
        ("placement", placement_json(&c.strategy, &a.placement)),
        ("ablations", ablations_json(&c.ablations)),
        (
            "circuit",
            circuit_json(
                a.circuit.qubits,
                a.circuit.gates,
                a.circuit.two_qubit_gates,
                a.circuit.remote_cx,
            ),
        ),
        ("ir", ir_json(a.ir.gates, a.ir.unique_gates, a.ir.dag_edges, a.ir.burst_pairs)),
        ("metrics", metrics_json(&a.metrics)),
        ("buffering", buffering_json(&a.buffering)),
        (
            "schedule",
            schedule_json(
                a.schedule.makespan,
                a.schedule.epr_pairs,
                a.schedule.swaps,
                a.schedule.fusion_savings,
                &a.schedule.link_traffic,
            ),
        ),
    ])
}
