//! Panic-hardened worker pools shared by the batch driver and the compile
//! service.
//!
//! Two shapes over the same hardening discipline ([`catch_panic`]):
//!
//! * [`par_rows`] — the batch shape: a fixed task list fanned over scoped
//!   std threads pulling indices from an atomic counter, results landing
//!   in their input slot so the output order never depends on scheduling.
//! * [`WorkerPool`] — the service shape: long-lived threads draining a
//!   shared job queue, owned by the `autocomm serve` daemon for the
//!   lifetime of the process.
//!
//! Both recover poisoned mutexes with `into_inner`: poisoning here only
//! means some *other* job panicked mid-store, and one bad compile must
//! never take down the batch or the daemon.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Runs `f`, converting a panic into its payload message. The seam that
/// keeps a panicking compile (malformed hand-built pipeline, scheduler
/// invariant violation) contained to the one job that hit it.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_owned())
    })
}

/// Runs `run(0..count)` across `jobs` scoped worker threads, returning
/// each result in its input slot. A task that panics produces
/// `on_panic(index, message)` instead; a slot left `None` means its
/// worker died before reporting (only possible if `on_panic` itself
/// panicked).
pub fn par_rows<R: Send>(
    count: usize,
    jobs: usize,
    run: impl Fn(usize) -> R + Sync,
    on_panic: impl Fn(usize, String) -> R + Sync,
) -> Vec<Option<R>> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    let workers = jobs.min(count).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let row = catch_panic(|| run(i)).unwrap_or_else(|msg| on_panic(i, msg));
                match slots.lock() {
                    Ok(mut slots) => slots[i] = Some(row),
                    // A panic between catch_panic and the store poisoned
                    // the mutex; keep going — the row stays a failure.
                    Err(poisoned) => poisoned.into_inner()[i] = Some(row),
                }
            });
        }
    });
    slots.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads draining a shared job queue —
/// the compile backend of `autocomm serve`. Jobs run under
/// [`catch_panic`], so a panicking compile never kills its worker;
/// dropping the pool closes the queue and joins every thread.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) queue-draining threads.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Holding the lock only while receiving keeps the
                    // queue a fair single-consumer handoff.
                    let job = {
                        let guard = match receiver.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.recv()
                    };
                    match job {
                        Ok(job) => {
                            // The job owns its error channel; the panic
                            // message is intentionally dropped here.
                            let _ = catch_panic(job);
                        }
                        Err(_) => break, // queue closed: pool is shutting down
                    }
                })
            })
            .collect();
        WorkerPool { sender: Some(sender), handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a job; some idle worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            // Send fails only after shutdown began; the job is dropped,
            // which is the correct refusal.
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the queue; workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_rows_preserves_input_order() {
        let rows = par_rows(32, 4, |i| i * i, |i, _| i);
        assert_eq!(rows.len(), 32);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(*row, Some(i * i));
        }
    }

    #[test]
    fn par_rows_contains_panics_to_their_slot() {
        let rows = par_rows(
            8,
            3,
            |i| {
                if i == 5 {
                    panic!("boom {i}");
                }
                Ok(i)
            },
            |i, msg| Err(format!("{i}: {msg}")),
        );
        assert_eq!(rows[5], Some(Err("5: boom 5".to_string())));
        for (i, row) in rows.iter().enumerate().filter(|&(i, _)| i != 5) {
            assert_eq!(*row, Some(Ok(i)));
        }
    }

    #[test]
    fn worker_pool_runs_jobs_and_survives_panics() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.execute(|| panic!("job panic"));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        pool.execute(move || flag.store(true, Ordering::SeqCst));
        drop(pool); // joins: every queued job ran first
        assert_eq!(hits.load(Ordering::SeqCst), 16);
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn catch_panic_extracts_string_payloads() {
        assert_eq!(catch_panic(|| 7), Ok(7));
        assert_eq!(catch_panic(|| panic!("static")), Err::<(), _>("static".to_string()));
        let msg = format!("formatted {}", 3);
        assert_eq!(catch_panic(|| panic!("{msg}")), Err::<(), _>("formatted 3".to_string()));
    }
}
