//! Minimal JSON document builder (the container is offline, so no serde).

use std::fmt;

/// A JSON value, rendered via [`fmt::Display`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered object (insertion order preserved).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn string<S: Into<String>>(s: S) -> Json {
        Json::String(s.into())
    }

    /// A numeric value.
    pub fn number(n: f64) -> Json {
        Json::Number(n)
    }

    /// An array from any iterator of values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object<'a, I: IntoIterator<Item = (&'a str, Json)>>(fields: I) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) if !n.is_finite() => f.write_str("null"),
            // Integers render without a trailing ".0" so counts look like
            // counts.
            Json::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                write!(f, "{}", *n as i64)
            }
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::string("qft")),
            ("n", Json::number(16.0)),
            ("ratio", Json::number(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::array([Json::number(1.0), Json::number(2.0)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"qft","n":16,"ratio":2.5,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::string("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::string("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::number(f64::NAN).to_string(), "null");
        assert_eq!(Json::number(f64::INFINITY).to_string(), "null");
    }
}
