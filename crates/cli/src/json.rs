//! Minimal JSON document builder and parser (the container is offline, so
//! no serde). The parser exists for the compile service's wire protocol:
//! newline-delimited request/response objects built and read with the
//! same [`Json`] type the reports already use.

use std::fmt;

/// A JSON value, rendered via [`fmt::Display`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered object (insertion order preserved).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn string<S: Into<String>>(s: S) -> Json {
        Json::String(s.into())
    }

    /// A numeric value.
    pub fn number(n: f64) -> Json {
        Json::Number(n)
    }

    /// An array from any iterator of values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object<'a, I: IntoIterator<Item = (&'a str, Json)>>(fields: I) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document (the service protocol's request/response
    /// lines). Rejects trailing non-whitespace.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{token}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let code = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.pos = end;
                            // Surrogates (the emitter never writes them for
                            // this protocol) decode as the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-borrow the full char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    self.pos += ch.len_utf8() - 1;
                    out.push(ch);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) if !n.is_finite() => f.write_str("null"),
            // Integers render without a trailing ".0" so counts look like
            // counts.
            Json::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                write!(f, "{}", *n as i64)
            }
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::string("qft")),
            ("n", Json::number(16.0)),
            ("ratio", Json::number(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::array([Json::number(1.0), Json::number(2.0)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"qft","n":16,"ratio":2.5,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::string("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::string("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::number(f64::NAN).to_string(), "null");
        assert_eq!(Json::number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_inverts_render() {
        let doc = Json::object([
            ("name", Json::string("qft \"big\"\n")),
            ("n", Json::number(16.0)),
            ("ratio", Json::number(-2.5e-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::array([Json::number(1.0), Json::string("π unicode")])),
            ("nested", Json::object([("k", Json::array([]))])),
        ]);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_string(), doc.to_string());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\\u0041/\" } ").unwrap();
        assert_eq!(parsed.get("a"), Some(&Json::array([Json::number(1.0), Json::number(2.0)])));
        assert_eq!(parsed.get("b").and_then(Json::as_str), Some("xA/"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\":}", "tru", "1 2", "{'a':1}", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn accessors_read_typed_fields() {
        let doc = Json::parse(r#"{"op":"compile","nodes":4,"verbose":true}"#).unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("compile"));
        assert_eq!(doc.get("nodes").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("verbose").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("op"), None);
    }
}
