//! The `autocomm` command-line compiler.
//!
//! `autocomm compile <file.qasm> --nodes N [--ablation ...] [--json]`
//! drives QASM parsing → partitioning → the pass-manager pipeline →
//! metrics end to end; `autocomm batch <dir|--suite> --nodes N [--jobs J]`
//! fans a whole workload set across a worker pool; `autocomm serve` keeps
//! a persistent compile daemon with a content-addressed artifact cache
//! (`submit`/`stats`/`shutdown` are its clients). See [`dqc_cli::USAGE`]
//! for the full surface.

use std::process::ExitCode;

use dqc_cli::batch::{run_batch, BatchArgs};
use dqc_cli::serve::{
    parse_addr, run_serve, run_shutdown, run_stats, run_submit, ServeArgs, SubmitArgs,
};
use dqc_cli::{compile, CliError, CompileArgs, USAGE};

fn exit_code(result: Result<(), CliError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("autocomm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("compile") => match CompileArgs::parse(args).and_then(compile) {
            Ok(report) => {
                if report.args.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.to_text());
                }
                ExitCode::SUCCESS
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("autocomm: {e}");
                ExitCode::FAILURE
            }
        },
        Some("batch") => match BatchArgs::parse(args).and_then(run_batch) {
            Ok(report) => {
                if report.args.json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.to_text());
                }
                if report.failures() == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("autocomm: {e}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => exit_code(ServeArgs::parse(args).and_then(run_serve)),
        Some("submit") => exit_code(SubmitArgs::parse(args).and_then(|a| run_submit(&a))),
        Some("stats") => exit_code(parse_addr(args).and_then(|a| run_stats(&a))),
        Some("shutdown") => exit_code(parse_addr(args).and_then(|a| run_shutdown(&a))),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("autocomm: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
