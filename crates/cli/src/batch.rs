//! The `autocomm batch` driver: compile a whole directory of QASM programs
//! (or the built-in workload suite) across a worker pool and emit one
//! aggregated metrics report.
//!
//! The indexed-IR pipeline made single compiles cheap enough that whole
//! suites compile in milliseconds; this driver fans inputs over `--jobs`
//! std threads (each compile is a pure function of its input, so the
//! report is byte-identical for every job count — only the timing fields
//! vary) and totals the paper metrics across the batch.

use std::path::PathBuf;
use std::time::Instant;

use autocomm::{Ablation, BufferPolicy};
use dqc_circuit::{from_qasm, Circuit, CircuitStats};
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_workloads::{generate, smoke_suite};

use crate::json::Json;
use crate::pool::par_rows;
use crate::{
    build_partition, compiler_for, parse_buffer, parse_strategy, placement_config, CliError,
    PartitionStrategy, USAGE,
};

/// Where a batch gets its programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchSource {
    /// Every `*.qasm` file in a directory, sorted by file name.
    Dir(PathBuf),
    /// The built-in smoke suite ([`dqc_workloads::smoke_suite`]).
    Suite,
}

/// Parsed `autocomm batch` invocation.
#[derive(Clone, Debug)]
pub struct BatchArgs {
    /// Input programs.
    pub source: BatchSource,
    /// Number of hardware nodes every program is compiled for.
    pub nodes: usize,
    /// Communication qubits per node.
    pub comm_qubits: usize,
    /// Interconnect topology spec (name or file path); `None` = all-to-all.
    pub topology: Option<String>,
    /// Placement strategy.
    pub strategy: PartitionStrategy,
    /// Re-place + recompile rounds for `--placement topo` (default 3).
    pub refine_iters: usize,
    /// EPR buffering policy for the scheduler (`--buffer`).
    pub buffer: BufferPolicy,
    /// Ablations applied to every compile.
    pub ablations: Vec<Ablation>,
    /// Worker threads (defaults to available parallelism, capped at 8).
    pub jobs: usize,
    /// Emit JSON instead of the human-readable report.
    pub json: bool,
    /// Add a `"timings"` object (per-pass wall-clock totals summed across
    /// every program) to the JSON report.
    pub timings: bool,
    /// Whether the legacy `--partition` alias was used (one deprecation
    /// warning per batch, not one per file).
    pub legacy_partition_alias: bool,
}

impl BatchArgs {
    /// Parses the arguments following the `batch` subcommand.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown flags, malformed values, or a
    /// missing input/`--nodes`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<BatchArgs, CliError> {
        let mut dir: Option<PathBuf> = None;
        let mut suite = false;
        let mut nodes = None;
        let mut comm_qubits = 2usize;
        let mut topology = None;
        let mut strategy = PartitionStrategy::Oee;
        let mut refine_iters = 3usize;
        let mut buffer = BufferPolicy::OnDemand;
        let mut ablations = Vec::new();
        let mut jobs = None;
        let mut json = false;
        let mut timings = false;
        let mut legacy_partition_alias = false;

        let usage = |msg: String| CliError::Usage(format!("{msg}\n\n{USAGE}"));
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for =
                |flag: &str| iter.next().ok_or_else(|| usage(format!("{flag} needs a value")));
            match arg.as_str() {
                "--suite" => suite = true,
                "--nodes" => {
                    let v = value_for("--nodes")?;
                    nodes = Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        usage(format!("--nodes: '{v}' is not a positive integer"))
                    })?);
                }
                "--jobs" => {
                    let v = value_for("--jobs")?;
                    jobs = Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        usage(format!("--jobs: '{v}' is not a positive integer"))
                    })?);
                }
                "--comm-qubits" => {
                    let v = value_for("--comm-qubits")?;
                    comm_qubits = v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        usage(format!("--comm-qubits: '{v}' is not a positive integer"))
                    })?;
                }
                "--topology" => topology = Some(value_for("--topology")?),
                "--buffer" => {
                    let v = value_for("--buffer")?;
                    buffer = parse_buffer(&v).map_err(usage)?;
                }
                "--placement" | "--partition" => {
                    let flag = arg.as_str();
                    let v = value_for(flag)?;
                    strategy = parse_strategy(flag, &v).map_err(usage)?;
                    if flag == "--partition" {
                        legacy_partition_alias = true;
                    }
                }
                "--refine-iters" => {
                    let v = value_for("--refine-iters")?;
                    refine_iters = v.parse::<usize>().map_err(|_| {
                        usage(format!("--refine-iters: '{v}' is not a non-negative integer"))
                    })?;
                }
                "--ablation" => {
                    let v = value_for("--ablation")?;
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        let ablation = Ablation::parse(name).ok_or_else(|| {
                            let known: Vec<&str> =
                                Ablation::all().iter().map(|a| a.name()).collect();
                            usage(format!(
                                "--ablation: unknown ablation '{name}' (expected one of {})",
                                known.join(", ")
                            ))
                        })?;
                        if !ablations.contains(&ablation) {
                            ablations.push(ablation);
                        }
                    }
                }
                "--json" => json = true,
                "--timings" => timings = true,
                flag if flag.starts_with('-') => {
                    return Err(usage(format!("unknown option '{flag}'")));
                }
                positional => {
                    if dir.replace(PathBuf::from(positional)).is_some() {
                        return Err(usage(format!(
                            "unexpected extra argument '{positional}' (one input directory expected)"
                        )));
                    }
                }
            }
        }

        let source = match (dir, suite) {
            (Some(_), true) => {
                return Err(usage("pass either an input directory or --suite, not both".into()))
            }
            (Some(d), false) => BatchSource::Dir(d),
            (None, true) => BatchSource::Suite,
            (None, false) => {
                return Err(usage("missing input: a directory of .qasm files or --suite".into()))
            }
        };
        Ok(BatchArgs {
            source,
            nodes: nodes.ok_or_else(|| usage("missing required --nodes <N>".into()))?,
            comm_qubits,
            topology,
            strategy,
            refine_iters,
            buffer,
            ablations,
            jobs: jobs.unwrap_or_else(default_jobs),
            json,
            timings,
            legacy_partition_alias,
        })
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// One program to compile.
#[derive(Clone, Debug)]
enum BatchTask {
    File(PathBuf),
    Generated(dqc_workloads::BenchConfig),
}

impl BatchTask {
    fn label(&self) -> String {
        match self {
            BatchTask::File(p) => p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string()),
            BatchTask::Generated(c) => c.label(),
        }
    }

    fn load(&self) -> Result<Circuit, String> {
        match self {
            BatchTask::File(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                from_qasm(&text).map_err(|e| format!("{}: {e}", path.display()))
            }
            BatchTask::Generated(config) => Ok(generate(config)),
        }
    }
}

/// The metrics of one successfully compiled batch entry.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRow {
    /// Input label (file stem or workload label).
    pub label: String,
    /// Logical qubits.
    pub qubits: usize,
    /// Unrolled gate count.
    pub gates: usize,
    /// Remote two-qubit gates under the chosen partition.
    pub remote_cx: usize,
    /// Paper "Tot Comm".
    pub total_comms: usize,
    /// Paper "TP-Comm".
    pub tp_comms: usize,
    /// Paper improvement factor vs the sparse baseline.
    pub improvement: f64,
    /// Schedule makespan in CX units.
    pub makespan: f64,
    /// Assignment-level hop-weighted EPR cost (`Σ comms × hops`) — the
    /// quantity the placement strategies compete on.
    pub epr_cost: usize,
    /// Accepted placement-refinement rounds (0 unless `--placement topo`).
    pub placement_iters: usize,
    /// EPR pairs consumed by the schedule (one per hop on sparse
    /// topologies).
    pub epr_pairs: usize,
    /// Entanglement swaps performed at relay nodes.
    pub swaps: usize,
    /// EPR pairs generated per interconnect link, `(node, node, pairs)`.
    pub link_traffic: Vec<(usize, usize, usize)>,
    /// Prefetch hits of the buffered scheduler (0 under on-demand).
    pub prefetch_hits: usize,
    /// Comm requests the scheduler served.
    pub comm_requests: usize,
    /// Mean time bursts waited for their EPR pair, in CX units.
    pub mean_epr_wait: f64,
    /// Whether the buffered schedule fell back to the on-demand rail.
    pub fell_back: bool,
    /// Per-pass wall-clock times of this entry, `(pass, ms)` in pipeline
    /// order (feeds the aggregated `--timings` object).
    pub pass_ms: Vec<(&'static str, f64)>,
    /// Wall-clock compile time of this entry, in milliseconds.
    pub compile_ms: f64,
}

/// The aggregated outcome of a batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// The parsed arguments.
    pub args: BatchArgs,
    /// Per-entry results in input order (`Err` holds the failure message).
    pub rows: Vec<Result<BatchRow, String>>,
    /// Wall-clock time of the whole batch, in milliseconds.
    pub wall_ms: f64,
}

/// Compiles every input across a `--jobs`-wide std-thread worker pool.
///
/// Workers are panic-hardened: a compile that panics (a malformed
/// hand-built pipeline, a scheduler invariant violation) becomes that
/// entry's failure row instead of aborting the whole batch.
///
/// # Errors
///
/// Fails fast on unusable input sets (unreadable directory, no `.qasm`
/// files, an invalid `--topology`); per-entry compile failures land in
/// their row instead.
pub fn run_batch(args: BatchArgs) -> Result<BatchReport, CliError> {
    if args.legacy_partition_alias {
        // One warning per batch — never one per compiled file.
        eprintln!(
            "warning: --partition is a legacy alias of --placement and will be removed; \
             use --placement {}",
            args.strategy.name()
        );
    }
    let tasks = collect_tasks(&args)?;
    // Resolve the topology and validate the whole hardware configuration
    // once up front: a bad spec or an infeasible comm-qubit/topology
    // combination fails fast as one usage error instead of once per row,
    // and topology files are read from disk exactly once.
    let topology = crate::resolve_topology(args.topology.as_deref(), args.nodes)?;
    HardwareSpec::symmetric(args.nodes)
        .with_comm_qubits(args.comm_qubits)
        .and_then(|hw| hw.with_topology(topology.clone()))
        .map_err(|e| CliError::Usage(format!("invalid hardware configuration: {e}\n\n{USAGE}")))?;
    let started = Instant::now();
    let rows = par_rows(
        tasks.len(),
        args.jobs,
        |i| compile_task(&tasks[i], &args, &topology),
        |i, msg| Err(format!("{}: compile panicked: {msg}", tasks[i].label())),
    )
    .into_iter()
    .enumerate()
    .map(|(i, r)| {
        r.unwrap_or_else(|| Err(format!("{}: worker died before reporting", tasks[i].label())))
    })
    .collect();
    Ok(BatchReport { args, rows, wall_ms: started.elapsed().as_secs_f64() * 1e3 })
}

fn collect_tasks(args: &BatchArgs) -> Result<Vec<BatchTask>, CliError> {
    match &args.source {
        BatchSource::Suite => Ok(smoke_suite().into_iter().map(BatchTask::Generated).collect()),
        BatchSource::Dir(dir) => {
            let entries = std::fs::read_dir(dir).map_err(|e| CliError::Io(dir.clone(), e))?;
            let mut files: Vec<PathBuf> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().map(|x| x == "qasm").unwrap_or(false))
                .collect();
            files.sort();
            if files.is_empty() {
                return Err(CliError::Compile(format!(
                    "no .qasm files found in {}",
                    dir.display()
                )));
            }
            Ok(files.into_iter().map(BatchTask::File).collect())
        }
    }
}

fn compile_task(
    task: &BatchTask,
    args: &BatchArgs,
    topology: &NetworkTopology,
) -> Result<BatchRow, String> {
    let started = Instant::now();
    let circuit = task.load()?;
    // Front-end time: QASM read+parse for file tasks, generation for
    // workload tasks — prepended to `pass_ms` so the batch timing columns
    // cover the whole run like the single-compile `--timings` object.
    let parse_ms = started.elapsed().as_secs_f64() * 1e3;
    if circuit.num_qubits() < args.nodes {
        return Err(format!(
            "cannot spread {} qubits over {} nodes",
            circuit.num_qubits(),
            args.nodes
        ));
    }
    let partition =
        build_partition(&circuit, args.nodes, args.strategy).map_err(|e| e.to_string())?;
    // The configuration was validated once in `run_batch`; rebuilding the
    // spec from the already-resolved topology cannot fail.
    let hw = HardwareSpec::for_partition(&partition)
        .with_comm_qubits(args.comm_qubits)
        .and_then(|hw| hw.with_topology(topology.clone()))
        .map_err(|e| e.to_string())?;
    let config = placement_config(args.strategy, args.refine_iters);
    let (result, placement) = compiler_for(&args.ablations, args.buffer)
        .compile_placed(&circuit, &partition, &hw, &config)
        .map_err(|e| e.to_string())?;
    let stats = CircuitStats::of(&result.unrolled, Some(result.placement.partition()));
    Ok(BatchRow {
        label: task.label(),
        qubits: circuit.num_qubits(),
        gates: stats.num_gates,
        remote_cx: stats.num_remote_2q,
        total_comms: result.metrics.total_comms,
        tp_comms: result.metrics.tp_comms,
        epr_cost: result.metrics.total_epr_cost,
        placement_iters: placement.iterations,
        improvement: result.metrics.improvement_factor(),
        makespan: result.schedule.makespan,
        epr_pairs: result.schedule.epr_pairs,
        swaps: result.schedule.swaps,
        link_traffic: result
            .schedule
            .link_traffic
            .iter()
            .map(|&(a, b, pairs)| (a.index(), b.index(), pairs))
            .collect(),
        prefetch_hits: result.schedule.buffering.prefetch_hits,
        comm_requests: result.schedule.buffering.requests,
        mean_epr_wait: result.schedule.buffering.mean_epr_wait,
        fell_back: result.schedule.buffering.fell_back,
        pass_ms: std::iter::once(("parse", parse_ms))
            .chain(result.passes.iter().map(|p| (p.pass, p.duration.as_secs_f64() * 1e3)))
            .collect(),
        compile_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

impl BatchReport {
    /// Number of entries that failed to compile.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.is_err()).count()
    }

    fn ok_rows(&self) -> impl Iterator<Item = &BatchRow> {
        self.rows.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Sum of per-entry compile times (the sequential-equivalent cost).
    pub fn cpu_ms(&self) -> f64 {
        self.ok_rows().map(|r| r.compile_ms).sum()
    }

    /// Per-pass wall-clock totals summed over every successful row, in
    /// first-seen pipeline order (every row runs the same pipeline, so this
    /// is simply the pass order).
    pub fn total_pass_ms(&self) -> Vec<(&'static str, f64)> {
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for row in self.ok_rows() {
            for &(pass, ms) in &row.pass_ms {
                match totals.iter_mut().find(|(p, _)| *p == pass) {
                    Some((_, total)) => *total += ms,
                    None => totals.push((pass, ms)),
                }
            }
        }
        totals
    }

    /// Per-link EPR traffic aggregated over every successful row, sorted by
    /// endpoints.
    pub fn total_link_traffic(&self) -> Vec<(usize, usize, usize)> {
        let mut totals: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for row in self.ok_rows() {
            for &(a, b, pairs) in &row.link_traffic {
                *totals.entry((a, b)).or_default() += pairs;
            }
        }
        totals.into_iter().map(|((a, b), pairs)| (a, b, pairs)).collect()
    }

    /// The machine-readable form emitted under `--json`.
    pub fn to_json(&self) -> Json {
        let totals = |f: fn(&BatchRow) -> f64| self.ok_rows().map(f).sum::<f64>();
        // `--timings` adds the per-pass wall-clock totals (summed across
        // every compiled program) as a flat pass-name -> milliseconds
        // object.
        let timings = self.args.timings.then(|| {
            (
                "timings",
                Json::object(
                    self.total_pass_ms().into_iter().map(|(pass, ms)| (pass, Json::number(ms))),
                ),
            )
        });
        Json::object(
            [
                ("nodes", Json::number(self.args.nodes as f64)),
                ("jobs", Json::number(self.args.jobs as f64)),
                (
                    "topology",
                    Json::string(self.args.topology.clone().unwrap_or_else(|| "all-to-all".into())),
                ),
                ("placement", Json::string(self.args.strategy.name())),
                ("refine_iters", Json::number(self.args.refine_iters as f64)),
                (
                    "buffering",
                    Json::object([
                        ("policy", Json::string(self.args.buffer.name())),
                        (
                            "prefetch_hits",
                            Json::number(
                                self.ok_rows().map(|r| r.prefetch_hits).sum::<usize>() as f64
                            ),
                        ),
                        (
                            "comm_requests",
                            Json::number(
                                self.ok_rows().map(|r| r.comm_requests).sum::<usize>() as f64
                            ),
                        ),
                        (
                            "fallbacks",
                            Json::number(self.ok_rows().filter(|r| r.fell_back).count() as f64),
                        ),
                    ]),
                ),
                (
                    "source",
                    Json::string(match &self.args.source {
                        BatchSource::Dir(d) => d.display().to_string(),
                        BatchSource::Suite => "--suite".to_string(),
                    }),
                ),
                ("programs", Json::number(self.rows.len() as f64)),
                ("failures", Json::number(self.failures() as f64)),
                (
                    "rows",
                    Json::array(self.rows.iter().map(|row| match row {
                        Ok(r) => Json::object([
                            ("label", Json::string(r.label.clone())),
                            ("qubits", Json::number(r.qubits as f64)),
                            ("gates", Json::number(r.gates as f64)),
                            ("remote_cx", Json::number(r.remote_cx as f64)),
                            ("total_comms", Json::number(r.total_comms as f64)),
                            ("tp_comms", Json::number(r.tp_comms as f64)),
                            ("improvement_factor", Json::number(r.improvement)),
                            ("makespan", Json::number(r.makespan)),
                            ("epr_cost", Json::number(r.epr_cost as f64)),
                            ("placement_iters", Json::number(r.placement_iters as f64)),
                            ("epr_pairs", Json::number(r.epr_pairs as f64)),
                            ("swaps", Json::number(r.swaps as f64)),
                            ("prefetch_hits", Json::number(r.prefetch_hits as f64)),
                            ("comm_requests", Json::number(r.comm_requests as f64)),
                            ("mean_epr_wait", Json::number(r.mean_epr_wait)),
                            ("fell_back", Json::Bool(r.fell_back)),
                            (
                                "link_traffic",
                                Json::array(r.link_traffic.iter().map(|&(a, b, pairs)| {
                                    Json::object([
                                        ("a", Json::number(a as f64)),
                                        ("b", Json::number(b as f64)),
                                        ("epr_pairs", Json::number(pairs as f64)),
                                    ])
                                })),
                            ),
                            ("compile_ms", Json::number(r.compile_ms)),
                        ]),
                        Err(msg) => Json::object([("error", Json::string(msg.clone()))]),
                    })),
                ),
                (
                    "totals",
                    Json::object([
                        ("total_comms", Json::number(totals(|r| r.total_comms as f64))),
                        ("tp_comms", Json::number(totals(|r| r.tp_comms as f64))),
                        ("remote_cx", Json::number(totals(|r| r.remote_cx as f64))),
                        ("epr_cost", Json::number(totals(|r| r.epr_cost as f64))),
                        ("epr_pairs", Json::number(totals(|r| r.epr_pairs as f64))),
                        ("swaps", Json::number(totals(|r| r.swaps as f64))),
                        ("makespan", Json::number(totals(|r| r.makespan))),
                        (
                            "link_traffic",
                            Json::array(self.total_link_traffic().into_iter().map(
                                |(a, b, pairs)| {
                                    Json::object([
                                        ("a", Json::number(a as f64)),
                                        ("b", Json::number(b as f64)),
                                        ("epr_pairs", Json::number(pairs as f64)),
                                    ])
                                },
                            )),
                        ),
                    ]),
                ),
                ("cpu_ms", Json::number(self.cpu_ms())),
                ("wall_ms", Json::number(self.wall_ms)),
            ]
            .into_iter()
            .chain(timings),
        )
    }

    /// The human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "batch: {} program(s) over {} node(s), {} job(s)\n",
            self.rows.len(),
            self.args.nodes,
            self.args.jobs
        ));
        out.push_str(&format!(
            "  {:<16} {:>6} {:>7} {:>8} {:>9} {:>8} {:>8} {:>10} {:>9}\n",
            "program", "qubits", "gates", "rem CX", "Tot Comm", "TP", "improv", "makespan", "ms"
        ));
        for row in &self.rows {
            match row {
                Ok(r) => out.push_str(&format!(
                    "  {:<16} {:>6} {:>7} {:>8} {:>9} {:>8} {:>7.2}x {:>10.1} {:>9.2}\n",
                    r.label,
                    r.qubits,
                    r.gates,
                    r.remote_cx,
                    r.total_comms,
                    r.tp_comms,
                    r.improvement,
                    r.makespan,
                    r.compile_ms,
                )),
                Err(msg) => out.push_str(&format!("  FAILED: {msg}\n")),
            }
        }
        let comms: usize = self.ok_rows().map(|r| r.total_comms).sum();
        let rem: usize = self.ok_rows().map(|r| r.remote_cx).sum();
        let cost: usize = self.ok_rows().map(|r| r.epr_cost).sum();
        let epr: usize = self.ok_rows().map(|r| r.epr_pairs).sum();
        let swaps: usize = self.ok_rows().map(|r| r.swaps).sum();
        out.push_str(&format!(
            "totals: {} comms for {} remote CX (EPR cost {}, {} EPR pairs scheduled, {} swaps)\n",
            comms, rem, cost, epr, swaps
        ));
        if self.args.strategy == PartitionStrategy::Topo {
            let iters: usize = self.ok_rows().map(|r| r.placement_iters).sum();
            out.push_str(&format!(
                "placement: topo ({} refinement round(s) accepted across the batch)\n",
                iters
            ));
        }
        if self.args.buffer.is_buffered() {
            let hits: usize = self.ok_rows().map(|r| r.prefetch_hits).sum();
            let requests: usize = self.ok_rows().map(|r| r.comm_requests).sum();
            let fallbacks = self.ok_rows().filter(|r| r.fell_back).count();
            out.push_str(&format!(
                "buffering: {} ({hits}/{requests} prefetch hits, {fallbacks} fallback(s))\n",
                self.args.buffer.name()
            ));
        }
        if self.args.topology.is_some() {
            let links: Vec<String> = self
                .total_link_traffic()
                .into_iter()
                .map(|(a, b, pairs)| format!("{a}-{b}:{pairs}"))
                .collect();
            out.push_str(&format!(
                "link EPR traffic ({}): {}\n",
                self.args.topology.as_deref().unwrap_or("all-to-all"),
                if links.is_empty() { "none".to_string() } else { links.join(" ") }
            ));
        }
        if self.args.timings {
            let passes: Vec<String> = self
                .total_pass_ms()
                .into_iter()
                .map(|(pass, ms)| format!("{pass}:{ms:.2}"))
                .collect();
            out.push_str(&format!("pass timings (ms): {}\n", passes.join(" ")));
        }
        out.push_str(&format!(
            "time: {:.2} ms wall, {:.2} ms cpu ({:.2}x parallel speedup)\n",
            self.wall_ms,
            self.cpu_ms(),
            if self.wall_ms > 0.0 { self.cpu_ms() / self.wall_ms } else { 1.0 }
        ));
        if self.failures() > 0 {
            out.push_str(&format!("{} program(s) FAILED\n", self.failures()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BatchArgs, CliError> {
        BatchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_suite_invocation() {
        let args = parse(&["--suite", "--nodes", "4", "--jobs", "4", "--json"]).unwrap();
        assert_eq!(args.source, BatchSource::Suite);
        assert_eq!(args.nodes, 4);
        assert_eq!(args.jobs, 4);
        assert!(args.json);
    }

    #[test]
    fn parses_directory_invocation_with_defaults() {
        let args = parse(&["bench/qasm", "--nodes", "2"]).unwrap();
        assert_eq!(args.source, BatchSource::Dir(PathBuf::from("bench/qasm")));
        assert_eq!(args.comm_qubits, 2);
        assert_eq!(args.strategy, PartitionStrategy::Oee);
        assert!(args.jobs >= 1);
        assert!(!args.json);
    }

    #[test]
    fn rejects_bad_usage() {
        for bad in [
            &["--nodes", "2"][..],                   // no input
            &["--suite"][..],                        // no nodes
            &["dir", "--suite", "--nodes", "2"][..], // both inputs
            &["dir", "extra", "--nodes", "2"][..],   // two dirs
            &["--suite", "--nodes", "0"][..],        // zero nodes
            &["--suite", "--nodes", "2", "--jobs", "0"][..],
            &["--suite", "--nodes", "2", "--frob"][..],
        ] {
            assert!(matches!(parse(bad), Err(CliError::Usage(_))), "accepted: {bad:?}");
        }
    }

    #[test]
    fn suite_batch_is_deterministic_across_job_counts() {
        let run = |jobs: usize| {
            let args = parse(&["--suite", "--nodes", "4", "--jobs", &jobs.to_string()]).unwrap();
            run_batch(args).unwrap()
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.rows.len(), parallel.rows.len());
        for (a, b) in sequential.rows.iter().zip(&parallel.rows) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.label, b.label);
            assert_eq!(a.total_comms, b.total_comms);
            assert_eq!(a.tp_comms, b.tp_comms);
            assert_eq!(a.epr_pairs, b.epr_pairs);
            assert_eq!(a.makespan, b.makespan);
        }
        assert_eq!(sequential.failures(), 0);
    }

    #[test]
    fn timings_flag_sums_per_pass_totals() {
        let args = parse(&["--suite", "--nodes", "4", "--jobs", "2", "--timings"]).unwrap();
        assert!(args.timings);
        let report = run_batch(args).unwrap();
        assert_eq!(report.failures(), 0);
        let totals = report.total_pass_ms();
        assert!(!totals.is_empty());
        // Every program runs the same pipeline, so each pass total sums
        // one entry per row and every total is non-negative.
        for row in report.ok_rows() {
            assert_eq!(row.pass_ms.len(), totals.len());
        }
        assert!(totals.iter().all(|&(_, ms)| ms >= 0.0));
        let json = report.to_json().to_string();
        assert!(json.contains("\"timings\""));
        assert!(report.to_text().contains("pass timings (ms):"));
        // Without the flag the object stays out of the report.
        let silent =
            run_batch(parse(&["--suite", "--nodes", "4", "--jobs", "2"]).unwrap()).unwrap();
        assert!(!silent.to_json().to_string().contains("\"timings\""));
    }

    #[test]
    fn missing_directory_fails_fast() {
        let args = parse(&["/nonexistent-batch-dir", "--nodes", "2"]).unwrap();
        assert!(matches!(run_batch(args), Err(CliError::Io(_, _))));
    }

    #[test]
    fn bad_topology_fails_fast_as_usage() {
        let args = parse(&["--suite", "--nodes", "4", "--topology", "moebius"]).unwrap();
        assert!(matches!(run_batch(args), Err(CliError::Usage(_))));
        // An infeasible comm-qubit/topology combination also fails fast as
        // one usage error, not once per row.
        let args =
            parse(&["--suite", "--nodes", "4", "--topology", "linear", "--comm-qubits", "1"])
                .unwrap();
        assert!(matches!(run_batch(args), Err(CliError::Usage(_))));
    }

    #[test]
    fn sparse_suite_batch_attributes_link_traffic() {
        let run = |topology: Option<&str>| {
            let mut argv = vec!["--suite", "--nodes", "4", "--jobs", "2"];
            if let Some(t) = topology {
                argv.extend(["--topology", t]);
            }
            run_batch(parse(&argv).unwrap()).unwrap()
        };
        let dense = run(None);
        let sparse = run(Some("linear"));
        assert_eq!(dense.failures(), 0);
        assert_eq!(sparse.failures(), 0);
        // Sparse routing can only cost more EPR pairs and makespan.
        for (d, s) in dense.ok_rows().zip(sparse.ok_rows()) {
            assert_eq!(d.label, s.label);
            assert!(s.epr_pairs >= d.epr_pairs, "{}", s.label);
            assert!(s.makespan + 1e-9 >= d.makespan, "{}", s.label);
        }
        // The chain has 3 links; multi-hop traffic appears on them, and the
        // per-link totals partition the EPR total.
        let links = sparse.total_link_traffic();
        assert!(!links.is_empty());
        assert!(links.iter().all(|&(a, b, _)| b == a + 1), "linear links only");
        let link_sum: usize = links.iter().map(|&(_, _, p)| p).sum();
        let epr_sum: usize = sparse.ok_rows().map(|r| r.epr_pairs).sum();
        assert_eq!(link_sum, epr_sum);
        assert!(sparse.ok_rows().map(|r| r.swaps).sum::<usize>() > 0);
        // The aggregated JSON carries the attribution.
        let json = sparse.to_json().to_string();
        assert!(json.contains("link_traffic"));
        assert!(json.contains("\"swaps\""));
    }

    #[test]
    fn per_entry_failures_are_isolated() {
        let dir = std::env::temp_dir().join(format!("autocomm-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.qasm"), "qreg q[4];\ncx q[0], q[2];\n").unwrap();
        std::fs::write(dir.join("bad.qasm"), "qreg q[4];\nfrobnicate q[0];\n").unwrap();
        let args = BatchArgs {
            source: BatchSource::Dir(dir.clone()),
            nodes: 2,
            comm_qubits: 2,
            topology: None,
            strategy: PartitionStrategy::Block,
            refine_iters: 3,
            buffer: BufferPolicy::OnDemand,
            ablations: Vec::new(),
            jobs: 2,
            json: false,
            timings: false,
            legacy_partition_alias: false,
        };
        let report = run_batch(args).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.failures(), 1);
        // Sorted by name: bad.qasm first.
        assert!(report.rows[0].is_err());
        let good = report.rows[1].as_ref().unwrap();
        assert_eq!(good.total_comms, 1);
        let text = report.to_text();
        assert!(text.contains("FAILED"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
