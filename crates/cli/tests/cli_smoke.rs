//! End-to-end smoke tests of the `autocomm` binary: compile a real QASM
//! file and check both output modes and the JSON metrics shape.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qasm_fixture(name: &str, circuit: &dqc_circuit::Circuit) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("autocomm-cli-{name}-{}.qasm", std::process::id()));
    std::fs::write(&path, dqc_circuit::to_qasm(circuit)).expect("write fixture");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_autocomm")).args(args).output().expect("binary runs")
}

/// Pulls `"key":<number>` out of a flat JSON rendering.
fn json_number(json: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("{key} missing in {json}"));
    let rest = &json[at + needle.len()..];
    let end = rest.find([',', '}', ']']).expect("value terminated");
    rest[..end].parse().unwrap_or_else(|_| panic!("{key} not numeric in {json}"))
}

#[test]
fn compiles_qft_and_reports_json_metrics() {
    let path = qasm_fixture("qft", &dqc_workloads::qft(12));
    let out = run(&["compile", path.to_str().unwrap(), "--nodes", "4", "--json"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();

    // Table-3 shape: every headline metric present and consistent.
    let total = json_number(&json, "total_comms");
    let tp = json_number(&json, "tp_comms");
    let cat = json_number(&json, "cat_comms");
    let rem = json_number(&json, "total_rem_cx");
    assert!(total > 0.0, "QFT over 4 nodes must communicate: {json}");
    assert_eq!(tp + cat, total);
    assert!(rem >= total, "aggregation never issues more comms than remote CXs");
    assert!(json_number(&json, "improvement_factor") >= 1.0);
    assert!(json_number(&json, "makespan") > 0.0);
    assert!(json_number(&json, "epr_pairs") > 0.0);
    // The pass-manager trace is visible end to end.
    for pass in ["orient", "unroll", "aggregate", "assign", "metrics", "schedule"] {
        assert!(json.contains(&format!("\"pass\":\"{pass}\"")), "{pass} missing in {json}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn ablation_flags_change_the_pipeline() {
    let path = qasm_fixture("ablate", &dqc_workloads::qft(10));
    let file = path.to_str().unwrap();
    let full = run(&["compile", file, "--nodes", "2", "--json"]);
    let ablated =
        run(&["compile", file, "--nodes", "2", "--json", "--ablation", "no-commute,cat-only"]);
    assert!(full.status.success() && ablated.status.success());
    let full = String::from_utf8(full.stdout).unwrap();
    let ablated = String::from_utf8(ablated.stdout).unwrap();
    assert!(
        json_number(&ablated, "total_comms") >= json_number(&full, "total_comms"),
        "ablations must not beat the full compiler:\n{full}\n{ablated}"
    );
    assert!(ablated.contains("\"ablations\":[\"no-commute\",\"cat-only\"]"));
    std::fs::remove_file(path).ok();
}

#[test]
fn human_report_prints_table3_metrics() {
    let path = qasm_fixture("human", &dqc_workloads::bv(9));
    let out = run(&["compile", path.to_str().unwrap(), "--nodes", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["Tot Comm", "TP-Comm", "improv. factor", "passes", "aggregate"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_over_directory_matches_across_job_counts() {
    // Two programs in a temp dir; --jobs 1 and --jobs 2 must agree on every
    // metric (only the timing fields may differ).
    let dir = std::env::temp_dir().join(format!("autocomm-batch-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("qft10.qasm"), dqc_circuit::to_qasm(&dqc_workloads::qft(10))).unwrap();
    std::fs::write(dir.join("bv12.qasm"), dqc_circuit::to_qasm(&dqc_workloads::bv(12))).unwrap();

    let run_jobs = |jobs: &str| {
        let out = run(&["batch", dir.to_str().unwrap(), "--nodes", "2", "--jobs", jobs, "--json"]);
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let seq = run_jobs("1");
    let par = run_jobs("2");
    for key in ["total_comms", "tp_comms", "epr_pairs", "remote_cx", "makespan"] {
        // Compare the totals object values.
        let totals = |json: &str| {
            let at = json.find("\"totals\":").unwrap();
            json_number(&json[at..], key)
        };
        assert_eq!(totals(&seq), totals(&par), "{key} differs between job counts");
    }
    assert!(seq.contains("\"programs\":2"));
    assert!(seq.contains("\"failures\":0"));
    assert!(seq.contains("\"label\":\"bv12\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_suite_runs_end_to_end() {
    let out = run(&["batch", "--suite", "--nodes", "4", "--jobs", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["QFT-16-4", "UCCSD-8-4", "totals:", "parallel speedup"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
}

#[test]
fn explicit_all_to_all_is_bit_identical_to_the_default() {
    let path = qasm_fixture("topo-id", &dqc_workloads::qft(12));
    let file = path.to_str().unwrap();
    let implicit = run(&["compile", file, "--nodes", "4", "--json"]);
    let explicit = run(&["compile", file, "--nodes", "4", "--topology", "all-to-all", "--json"]);
    assert!(implicit.status.success() && explicit.status.success());
    let implicit = String::from_utf8(implicit.stdout).unwrap();
    let explicit = String::from_utf8(explicit.stdout).unwrap();
    for key in ["total_comms", "tp_comms", "epr_pairs", "makespan", "fusion_savings"] {
        assert_eq!(
            json_number(&implicit, key),
            json_number(&explicit, key),
            "{key} differs:\n{implicit}\n{explicit}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn sparse_topology_reports_swaps_and_link_traffic() {
    let path = qasm_fixture("topo-linear", &dqc_workloads::qft(12));
    let file = path.to_str().unwrap();
    let dense = run(&["compile", file, "--nodes", "4", "--json"]);
    let sparse = run(&["compile", file, "--nodes", "4", "--topology", "linear", "--json"]);
    assert!(dense.status.success() && sparse.status.success());
    let dense = String::from_utf8(dense.stdout).unwrap();
    let sparse = String::from_utf8(sparse.stdout).unwrap();
    assert!(sparse.contains("\"name\":\"linear\""));
    assert!(json_number(&sparse, "diameter") == 3.0);
    assert!(json_number(&sparse, "swaps") > 0.0, "QFT over a 4-chain must swap: {sparse}");
    assert!(sparse.contains("\"link_traffic\":[{\"a\":0,"), "per-link attribution: {sparse}");
    assert!(
        json_number(&sparse, "epr_pairs") > json_number(&dense, "epr_pairs"),
        "multi-hop routing costs link-level pairs"
    );
    assert!(json_number(&sparse, "makespan") > json_number(&dense, "makespan"));
    std::fs::remove_file(path).ok();
}

#[test]
fn topology_file_round_trips_through_the_cli() {
    let qasm = qasm_fixture("topo-file", &dqc_workloads::bv(12));
    let topo = std::env::temp_dir().join(format!("autocomm-topo-{}.txt", std::process::id()));
    std::fs::write(&topo, "nodes 3\nlink 0 1\nlink 1 2 latency=2.0\n").unwrap();
    let out = run(&[
        "compile",
        qasm.to_str().unwrap(),
        "--nodes",
        "3",
        "--topology",
        topo.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"name\":\"file\""));
    std::fs::remove_file(qasm).ok();
    std::fs::remove_file(topo).ok();
}

#[test]
fn batch_suite_with_linear_topology_attributes_links() {
    let out = run(&["batch", "--suite", "--nodes", "4", "--topology", "linear", "--jobs", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("link EPR traffic (linear):"), "missing attribution in:\n{text}");
    assert!(text.contains("swaps"), "missing swap totals in:\n{text}");
}

#[test]
fn topo_placement_reduces_epr_cost_on_sparse_topologies() {
    let path = qasm_fixture("place-topo", &dqc_workloads::qft(16));
    let file = path.to_str().unwrap();
    let block = run(&[
        "compile",
        file,
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--placement",
        "block",
        "--json",
    ]);
    let topo = run(&[
        "compile",
        file,
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--placement",
        "topo",
        "--json",
    ]);
    assert!(block.status.success() && topo.status.success());
    let block = String::from_utf8(block.stdout).unwrap();
    let topo = String::from_utf8(topo.stdout).unwrap();
    assert!(
        json_number(&topo, "epr_cost") <= json_number(&block, "epr_cost"),
        "topo placement must not lose to the identity block map:\n{block}\n{topo}"
    );
    // The placement object is reported with the final block→node map.
    assert!(topo.contains("\"placement\":{\"strategy\":\"topo\""), "{topo}");
    assert!(topo.contains("\"node_map\":["), "{topo}");
    assert!(json_number(&topo, "final_epr_cost") <= json_number(&topo, "initial_epr_cost"));
    std::fs::remove_file(path).ok();
}

#[test]
fn oee_placement_is_bit_identical_to_the_legacy_partition_flag() {
    // --placement oee and the legacy --partition oee are the same pipeline;
    // both must match the default exactly, on sparse topologies too.
    let path = qasm_fixture("place-oee", &dqc_workloads::qft(12));
    let file = path.to_str().unwrap();
    let default = run(&["compile", file, "--nodes", "4", "--topology", "linear", "--json"]);
    let placement = run(&[
        "compile",
        file,
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--placement",
        "oee",
        "--json",
    ]);
    let legacy = run(&[
        "compile",
        file,
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--partition",
        "oee",
        "--json",
    ]);
    assert!(default.status.success() && placement.status.success() && legacy.status.success());
    let default = String::from_utf8(default.stdout).unwrap();
    let placement = String::from_utf8(placement.stdout).unwrap();
    let legacy = String::from_utf8(legacy.stdout).unwrap();
    for key in ["total_comms", "tp_comms", "epr_cost", "epr_pairs", "makespan", "swaps"] {
        assert_eq!(json_number(&default, key), json_number(&placement, key), "{key}");
        assert_eq!(json_number(&default, key), json_number(&legacy, key), "{key}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_reports_epr_cost_totals_per_placement() {
    let run_pl = |pl: &str| {
        let out = run(&[
            "batch",
            "--suite",
            "--nodes",
            "4",
            "--topology",
            "linear",
            "--placement",
            pl,
            "--jobs",
            "2",
            "--json",
        ]);
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let totals = |json: &str| {
        let at = json.find("\"totals\":").unwrap();
        json_number(&json[at..], "epr_cost")
    };
    let block = run_pl("block");
    let topo = run_pl("topo");
    assert!(
        totals(&topo) < totals(&block),
        "suite-wide, topo placement must beat the block identity map: {} vs {}",
        totals(&topo),
        totals(&block)
    );
    assert!(topo.contains("\"placement\":\"topo\""));
}

#[test]
fn buffer_flag_reports_buffering_and_never_loses() {
    let path = qasm_fixture("buffer", &dqc_workloads::qft(16));
    let file = path.to_str().unwrap();
    let base = run(&["compile", file, "--nodes", "4", "--topology", "linear", "--json"]);
    let pre = run(&[
        "compile",
        file,
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--buffer",
        "prefetch:4",
        "--json",
    ]);
    assert!(base.status.success() && pre.status.success());
    let base = String::from_utf8(base.stdout).unwrap();
    let pre = String::from_utf8(pre.stdout).unwrap();
    assert!(base.contains("\"policy\":\"on-demand\""), "{base}");
    assert!(pre.contains("\"policy\":\"prefetch:4\""), "{pre}");
    assert!(
        json_number(&pre, "makespan") <= json_number(&base, "makespan") + 1e-9,
        "prefetch must not lose to on-demand:\n{base}\n{pre}"
    );
    // Same physical EPR accounting; only the schedule moves.
    assert_eq!(json_number(&pre, "epr_pairs"), json_number(&base, "epr_pairs"));
    for key in ["prefetch_hits", "prefetch_misses", "hit_rate", "mean_epr_wait", "mean_pair_age"] {
        assert!(pre.contains(&format!("\"{key}\":")), "missing {key} in {pre}");
    }
    assert!(pre.contains("\"occupancy_hist\":["), "{pre}");
    std::fs::remove_file(path).ok();
}

#[test]
fn buffered_batch_reports_suite_wide_buffering() {
    let out = run(&[
        "batch",
        "--suite",
        "--nodes",
        "4",
        "--topology",
        "linear",
        "--buffer",
        "prefetch:4",
        "--jobs",
        "2",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"buffering\":{\"policy\":\"prefetch:4\""), "{json}");
    let at = json.find("\"buffering\":").unwrap();
    assert!(json_number(&json[at..], "prefetch_hits") > 0.0, "suite must hit the buffer: {json}");
}

#[test]
fn bad_buffer_policy_is_a_usage_error() {
    let path = qasm_fixture("buffer-bad", &dqc_workloads::bv(9));
    let out = run(&["compile", path.to_str().unwrap(), "--nodes", "3", "--buffer", "psychic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
    let out = run(&["compile", path.to_str().unwrap(), "--nodes", "3", "--buffer", "prefetch:0"]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(path).ok();
}

#[test]
fn legacy_partition_alias_warns_exactly_once_per_batch() {
    // The suite has six programs; the deprecation warning must appear once
    // per batch, not once per file.
    let out = run(&["batch", "--suite", "--nodes", "4", "--partition", "oee", "--jobs", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    let warnings = stderr.matches("legacy alias").count();
    assert_eq!(warnings, 1, "expected exactly one deprecation warning, got:\n{stderr}");
    assert!(stderr.contains("--placement oee"), "warning names the replacement: {stderr}");

    // The modern flag stays silent.
    let out = run(&["batch", "--suite", "--nodes", "4", "--placement", "oee", "--jobs", "2"]);
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("legacy alias"),
        "--placement must not warn"
    );
}

#[test]
fn bad_topology_is_a_usage_error() {
    let path = qasm_fixture("topo-bad", &dqc_workloads::bv(9));
    let file = path.to_str().unwrap();
    let out = run(&["compile", file, "--nodes", "3", "--topology", "moebius"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topology"));
    // Zero relay budget on a sparse machine is caught by hardware
    // validation and surfaced as usage too.
    let out = run(&["compile", file, "--nodes", "3", "--topology", "linear", "--comm-qubits", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("communication qubits"));
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_usage_exits_2_with_usage_text() {
    let out = run(&["compile", "x.qasm"]); // no --nodes
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_input_exits_1() {
    let out = run(&["compile", "/nonexistent.qasm", "--nodes", "2"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
