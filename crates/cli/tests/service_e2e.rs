//! End-to-end gate for the compile service: boot the real `autocomm`
//! binary as a daemon, push the workload suite through it twice from
//! concurrent clients, and hold it to the cache contract — a 100%
//! second-pass hit rate with byte-identical responses — plus clean
//! shutdown and exit codes on every client mode.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dqc_cli::json::Json;
use dqc_cli::serve::roundtrip;

/// The running daemon; killed on drop so a failing assertion never
/// leaks a listener into the test harness.
struct Daemon {
    child: Child,
    addr: String,
    port_file: PathBuf,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        let port_file =
            std::env::temp_dir().join(format!("autocomm-e2e-{tag}-{}.port", std::process::id()));
        std::fs::remove_file(&port_file).ok();
        let child = Command::new(env!("CARGO_BIN_EXE_autocomm"))
            .args(["serve", "--port", "0", "--jobs", "4"])
            .arg("--port-file")
            .arg(&port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        // The daemon writes the bound port once it is listening.
        let deadline = Instant::now() + Duration::from_secs(30);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "daemon never wrote {}", port_file.display());
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon { child, addr: format!("127.0.0.1:{port}"), port_file }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        std::fs::remove_file(&self.port_file).ok();
    }
}

/// The suite as inline compile requests: every workload family, plus
/// sparse-topology / placement / buffering / ablation coverage.
fn suite_requests() -> Vec<String> {
    let req = |circuit: &dqc_circuit::Circuit, extra: &[(&str, Json)]| {
        let mut fields = vec![
            ("op", Json::string("compile")),
            ("qasm", Json::string(dqc_circuit::to_qasm(circuit))),
            ("nodes", Json::number(4.0)),
        ];
        fields.extend(extra.iter().cloned());
        Json::object(fields).to_string()
    };
    vec![
        req(&dqc_workloads::mctr(8), &[]),
        req(&dqc_workloads::rca(8), &[("topology", Json::string("linear"))]),
        req(
            &dqc_workloads::qft(12),
            &[("topology", Json::string("ring")), ("placement", Json::string("topo"))],
        ),
        req(&dqc_workloads::bv(12), &[("buffer", Json::string("prefetch:4"))]),
        req(
            &dqc_workloads::qaoa_maxcut(12, 18, 7),
            &[("ablations", Json::array([Json::string("no-commute")]))],
        ),
        req(&dqc_workloads::uccsd(8), &[("comm_qubits", Json::number(3.0))]),
    ]
}

/// Submits every request from its own client thread (one connection
/// each, all in flight together) and returns the responses in order.
fn concurrent_pass(addr: &str, requests: &[String]) -> Vec<String> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| scope.spawn(move || roundtrip(addr, request).expect("response")))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    })
}

/// Extracts the raw `"key":{...}` span (balanced braces; none of the
/// compared sections contain braces inside strings).
fn json_object(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\":{{");
    let start = json.find(&needle).unwrap_or_else(|| panic!("{key} missing in {json}"));
    let mut depth = 0usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return json[start..=start + i].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced {key} object in {json}");
}

fn stat(addr: &str, key: &str) -> f64 {
    let response = roundtrip(addr, "{\"op\":\"stats\"}").expect("stats");
    let parsed = Json::parse(&response).expect("stats parse");
    parsed
        .get("stats")
        .and_then(|stats| stats.get(key))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{key} in {response}"))
}

#[test]
fn suite_twice_is_all_hits_and_byte_identical() {
    let daemon = Daemon::start("suite");
    let addr = daemon.addr.clone();
    let requests = suite_requests();

    // Cold pass: all misses, every job compiles.
    let cold = concurrent_pass(&addr, &requests);
    for (request, response) in requests.iter().zip(&cold) {
        let parsed = Json::parse(response).expect("response parse");
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"), "{request}");
        assert!(parsed.get("artifact").is_some(), "artifact missing in {response}");
    }
    let misses_after_cold = stat(&addr, "cache_misses");
    assert_eq!(misses_after_cold, requests.len() as f64, "cold pass must all miss");

    // Warm pass: 100% hit rate, responses byte-identical to the cold pass.
    let warm = concurrent_pass(&addr, &requests);
    assert_eq!(cold, warm, "cache hits must be byte-identical to cold compiles");
    assert_eq!(stat(&addr, "cache_misses"), misses_after_cold, "warm pass must not miss");
    assert!(stat(&addr, "cache_hits") >= requests.len() as f64);
    assert_eq!(stat(&addr, "queue_depth"), 0.0, "nothing left in flight");

    // A malformed line is an error response, not a dead daemon.
    let err = roundtrip(&addr, "{\"op\":\"compile\"}").expect("error response");
    let parsed = Json::parse(&err).expect("error parse");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
    assert!(err.contains("qasm"), "error names the missing field: {err}");

    // Clean shutdown: exit code 0 on both the client and the daemon, and
    // the port file is removed.
    let out = Command::new(env!("CARGO_BIN_EXE_autocomm"))
        .args(["shutdown", "--addr", &addr])
        .output()
        .expect("shutdown client runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");
    assert!(!daemon.port_file.exists(), "port file must be cleaned up");
}

#[test]
fn submit_and_stats_clients_round_trip_the_binary() {
    let daemon = Daemon::start("clients");
    let addr = &daemon.addr;
    let qasm =
        std::env::temp_dir().join(format!("autocomm-e2e-submit-{}.qasm", std::process::id()));
    std::fs::write(&qasm, dqc_circuit::to_qasm(&dqc_workloads::qft(12))).unwrap();

    let submit = || {
        let out = Command::new(env!("CARGO_BIN_EXE_autocomm"))
            .args(["submit", qasm.to_str().unwrap(), "--nodes", "4", "--addr", addr])
            .output()
            .expect("submit client runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let cold = submit();
    let parsed = Json::parse(cold.trim_end()).expect("submit response parse");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    // Same job again: served from cache, byte for byte.
    assert_eq!(submit(), cold);

    // The artifact's deterministic sections are byte-identical to a cold
    // `compile --json` run of the same job — same section builders.
    let out = Command::new(env!("CARGO_BIN_EXE_autocomm"))
        .args(["compile", qasm.to_str().unwrap(), "--nodes", "4", "--json"])
        .output()
        .expect("compile runs");
    assert!(out.status.success());
    let compile_json = String::from_utf8(out.stdout).unwrap();
    for key in ["metrics", "schedule", "placement", "buffering", "circuit", "ir"] {
        let section = json_object(&cold, key);
        assert!(
            compile_json.contains(&section),
            "served {key} section drifted from compile --json:\n{section}\n{compile_json}"
        );
    }

    let out = Command::new(env!("CARGO_BIN_EXE_autocomm"))
        .args(["stats", "--addr", addr])
        .output()
        .expect("stats client runs");
    assert!(out.status.success());
    let stats = String::from_utf8(out.stdout).unwrap();
    assert!(stats.contains("\"cache_hits\":1"), "one warm hit expected: {stats}");
    assert!(stats.contains("\"cache_misses\":1"), "one cold miss expected: {stats}");

    // A submit against a dead address is exit code 1, not a hang.
    let out = Command::new(env!("CARGO_BIN_EXE_autocomm"))
        .args(["submit", qasm.to_str().unwrap(), "--nodes", "4", "--addr", "127.0.0.1:1"])
        .output()
        .expect("submit client runs");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&qasm).ok();
}
